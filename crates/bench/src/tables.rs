//! Quantitative tables (T-QUAL, T-SCALE, T-ABLATE, T-INST).
//!
//! The demo paper prints no numeric tables; these are the standard
//! counterfactual-explanation metrics its claims gesture at (validity,
//! minimality, search effort, latency), measured over the demo corpus and
//! synthetic corpora so the shapes are checkable and reproducible.

use std::time::Duration;

use credence_core::{
    cosine_sampled, doc2vec_nearest, explain_query_augmentation, explain_sentence_removal,
    CandidateOrdering, CosineSampledConfig, QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_embed::{Doc2Vec, Doc2VecConfig};
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::{
    rank_corpus, Bm25Ranker, NeuralSimConfig, NeuralSimRanker, QlSmoothing, QueryLikelihoodRanker,
    Ranker,
};
use credence_topics::{LdaConfig, LdaModel};

use crate::{ms, print_table, synth_index, timed, DemoSetup};

/// Train a doc2vec model matching `index`, with cheap parameters.
fn train_doc2vec(index: &InvertedIndex) -> Doc2Vec {
    let analyzer = index.analyzer();
    let seqs: Vec<Vec<usize>> = index
        .documents()
        .iter()
        .map(|d| {
            analyzer
                .analyze(&d.body)
                .iter()
                .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
                .collect()
        })
        .collect();
    Doc2Vec::train(
        &seqs,
        index.vocabulary().len(),
        &Doc2VecConfig {
            dim: 32,
            epochs: 20,
            ..Default::default()
        },
    )
}

/// T-QUAL: validity, perturbation size, search effort and latency of the
/// two generative explainers across three ranking models.
pub fn quality() {
    println!("\n=== T-QUAL: counterfactual quality across black-box rankers ===");
    let setup = DemoSetup::build();
    let index = &setup.index;
    let k = setup.demo.k;

    let queries = [
        "covid outbreak".to_string(),
        "covid vaccine".to_string(),
        "outbreak school".to_string(),
        "5g network".to_string(),
    ];

    let bm25 = Bm25Ranker::new(index, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(index, QlSmoothing::default());
    let neural = NeuralSimRanker::train(
        index,
        NeuralSimConfig {
            embedding: credence_embed::Word2VecConfig {
                dim: 32,
                epochs: 3,
                ..Default::default()
            },
            ..NeuralSimConfig::default()
        },
    );
    let rankers: Vec<&dyn Ranker> = vec![&bm25, &ql, &neural];

    let mut rows = Vec::new();
    for ranker in rankers {
        // Cases are picked per ranker so every case is explainable.
        let cases: Vec<(String, DocId)> = queries
            .iter()
            .filter_map(|q| {
                let ranking = rank_corpus(ranker, q);
                let top = ranking.top_k(k);
                (top.len() >= 2).then(|| (q.clone(), *top.last().unwrap()))
            })
            .collect();

        // Sentence removal.
        let mut sr_valid = 0usize;
        let mut sr_size = 0usize;
        let mut sr_evals = 0usize;
        let mut sr_time = Duration::ZERO;
        // Query augmentation.
        let mut qa_valid = 0usize;
        let mut qa_size = 0usize;
        let mut qa_evals = 0usize;
        let mut qa_time = Duration::ZERO;

        for (q, doc) in &cases {
            let (sr, t) = timed(|| {
                explain_sentence_removal(ranker, q, k, *doc, &SentenceRemovalConfig::default())
            });
            sr_time += t;
            if let Ok(sr) = sr {
                sr_evals += sr.candidates_evaluated;
                if let Some(e) = sr.explanations.first() {
                    sr_valid += 1;
                    sr_size += e.removed.len();
                }
            }

            let old_rank = rank_corpus(ranker, q).rank_of(*doc).unwrap_or(1);
            if old_rank > 1 {
                let (qa, t) = timed(|| {
                    explain_query_augmentation(
                        ranker,
                        q,
                        k,
                        *doc,
                        &QueryAugmentationConfig {
                            n: 1,
                            threshold: old_rank - 1,
                            ..Default::default()
                        },
                    )
                });
                qa_time += t;
                if let Ok(qa) = qa {
                    qa_evals += qa.candidates_evaluated;
                    if let Some(e) = qa.explanations.first() {
                        qa_valid += 1;
                        qa_size += e.terms.len();
                    }
                }
            }
        }

        let n = cases.len().max(1);
        rows.push(vec![
            ranker.name().to_string(),
            format!("{}/{}", sr_valid, n),
            format!("{:.1}", sr_size as f64 / sr_valid.max(1) as f64),
            format!("{:.0}", sr_evals as f64 / n as f64),
            ms(sr_time / n as u32),
            format!("{}/{}", qa_valid, n),
            format!("{:.1}", qa_size as f64 / qa_valid.max(1) as f64),
            format!("{:.0}", qa_evals as f64 / n as f64),
            ms(qa_time / n as u32),
        ]);
    }
    print_table(
        "explainer quality per ranker (demo corpus, k = 10)",
        &[
            "ranker",
            "SR valid",
            "SR |P|",
            "SR evals",
            "SR ms",
            "QA valid",
            "QA |terms|",
            "QA evals",
            "QA ms",
        ],
        &rows,
    );
}

/// T-SCALE: latency versus corpus size for indexing, ranking, and every
/// explainer; plus doc2vec/LDA training cost.
pub fn scaling() {
    println!("\n=== T-SCALE: latency vs corpus size (synthetic corpora) ===");
    let mut rows = Vec::new();
    for &num_docs in &[100usize, 300, 1000] {
        let ((corpus, index), t_index) = timed(|| synth_index(num_docs, 7));
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        let query = corpus.topic_query(0, 3);
        let k = 10;

        let (ranking, t_rank) = timed(|| rank_corpus(&ranker, &query));
        let doc = *ranking.top_k(k).last().expect("synthetic corpus matches");

        let (_, t_sr) = timed(|| {
            explain_sentence_removal(&ranker, &query, k, doc, &SentenceRemovalConfig::default())
        });
        let old_rank = ranking.rank_of(doc).unwrap();
        let (_, t_qa) = timed(|| {
            explain_query_augmentation(
                &ranker,
                &query,
                k,
                doc,
                &QueryAugmentationConfig {
                    n: 1,
                    threshold: (old_rank - 1).max(1),
                    ..Default::default()
                },
            )
        });
        let (_, t_cs) = timed(|| {
            cosine_sampled(
                &ranker,
                &query,
                k,
                doc,
                3,
                &CosineSampledConfig {
                    samples: 100,
                    ..Default::default()
                },
            )
        });
        let (model, t_d2v) = timed(|| train_doc2vec(&index));
        let (_, t_nn) = timed(|| doc2vec_nearest(&ranker, &model, &query, k, doc, 3));

        rows.push(vec![
            format!("{num_docs}"),
            ms(t_index),
            ms(t_rank),
            ms(t_sr),
            ms(t_qa),
            ms(t_cs),
            format!("{:.0}", t_d2v.as_secs_f64() * 1e3),
            ms(t_nn),
        ]);
    }
    print_table(
        "latency (ms) vs corpus size",
        &[
            "docs",
            "index",
            "rank",
            "sent-rm",
            "query-aug",
            "cos-sampled",
            "d2v-train",
            "d2v-nn",
        ],
        &rows,
    );

    // LDA cost over the ranked set (constant in corpus size: k docs).
    let (corpus, index) = synth_index(300, 7);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(1, 3);
    let ranking = rank_corpus(&ranker, &query);
    let analyzer = index.analyzer();
    let mut vocab = credence_text::Vocabulary::new();
    let docs: Vec<Vec<usize>> = ranking
        .top_k(10)
        .iter()
        .map(|&d| {
            analyzer
                .analyze(&index.document(d).unwrap().body)
                .iter()
                .map(|t| vocab.intern(t) as usize)
                .collect()
        })
        .collect();
    let mut lda_rows = Vec::new();
    for &iters in &[50usize, 200, 500] {
        let (model, t) = timed(|| {
            LdaModel::fit(
                &docs,
                vocab.len(),
                &LdaConfig {
                    num_topics: 3,
                    iterations: iters,
                    ..Default::default()
                },
            )
        });
        lda_rows.push(vec![
            format!("{iters}"),
            ms(t),
            format!("{:.1}", model.perplexity(&docs)),
        ]);
    }
    print_table(
        "LDA over the ranked top-10 (3 topics)",
        &["gibbs iters", "ms", "perplexity"],
        &lda_rows,
    );
}

/// T-ABLATE: the importance-guided candidate ordering versus random and
/// adversarial orderings — candidates evaluated until the first valid
/// counterfactual.
pub fn ablation() {
    println!("\n=== T-ABLATE: candidate-ordering ablation ===");
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let (query, k) = (setup.demo.query, setup.demo.k);

    let orderings: Vec<(&str, CandidateOrdering)> = vec![
        (
            "importance-guided (paper)",
            CandidateOrdering::ImportanceGuided,
        ),
        ("reverse (adversarial)", CandidateOrdering::Reverse),
        ("shuffled seed=1", CandidateOrdering::Shuffled(1)),
        ("shuffled seed=2", CandidateOrdering::Shuffled(2)),
        ("shuffled seed=3", CandidateOrdering::Shuffled(3)),
    ];

    let mut rows = Vec::new();
    for (label, ordering) in &orderings {
        let sr = explain_sentence_removal(
            &ranker,
            query,
            k,
            fake,
            &SentenceRemovalConfig {
                n: 1,
                ordering: *ordering,
                ..Default::default()
            },
        )
        .expect("ablation sr");
        let sr_evals = sr
            .explanations
            .first()
            .map(|e| e.candidates_evaluated.to_string())
            .unwrap_or_else(|| "not found".into());
        let sr_size = sr
            .explanations
            .first()
            .map(|e| e.removed.len().to_string())
            .unwrap_or_else(|| "-".into());

        let qa = explain_query_augmentation(
            &ranker,
            query,
            k,
            fake,
            &QueryAugmentationConfig {
                n: 1,
                threshold: 1,
                ordering: *ordering,
                ..Default::default()
            },
        )
        .expect("ablation qa");
        let qa_evals = qa
            .explanations
            .first()
            .map(|e| e.candidates_evaluated.to_string())
            .unwrap_or_else(|| "not found".into());

        rows.push(vec![label.to_string(), sr_evals, sr_size, qa_evals]);
    }
    print_table(
        "candidates evaluated until first valid counterfactual (demo fake-news article)",
        &["ordering", "SR evals", "SR |P|", "QA evals"],
        &rows,
    );
    println!(
        "note: size-major enumeration preserves minimality under every ordering;\n\
         the ordering only changes how fast a valid candidate is reached within a size level."
    );
}

/// T-INST: Doc2Vec-nearest vs cosine-sampled — agreement, similarity, and
/// the effect of the sample size `s`.
pub fn instances() {
    println!("\n=== T-INST: instance-based explainer comparison ===");
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let (query, k) = (setup.demo.query, setup.demo.k);
    let model = train_doc2vec(&setup.index);

    let n = 5;
    let (d2v, t_d2v) =
        timed(|| doc2vec_nearest(&ranker, &model, query, k, fake, n).expect("d2v instances"));

    let mut rows = Vec::new();
    rows.push(vec![
        "doc2vec-nearest".into(),
        "-".into(),
        format!("{}", d2v[0].doc),
        format!("{:.2}", d2v[0].similarity),
        ms(t_d2v),
    ]);
    for &s in &[10usize, 30, 100, 1000] {
        let (cs, t) = timed(|| {
            cosine_sampled(
                &ranker,
                query,
                k,
                fake,
                n,
                &CosineSampledConfig {
                    samples: s,
                    ..Default::default()
                },
            )
            .expect("cosine instances")
        });
        rows.push(vec![
            "cosine-sampled".into(),
            format!("{s}"),
            format!("{}", cs[0].doc),
            format!("{:.2}", cs[0].similarity),
            ms(t),
        ]);
    }
    print_table(
        "top instance per method (demo fake-news article)",
        &["method", "s", "top instance", "similarity", "ms"],
        &rows,
    );

    // Overlap of the two top-5 sets at exhaustive sampling.
    let cs_full = cosine_sampled(
        &ranker,
        query,
        k,
        fake,
        n,
        &CosineSampledConfig {
            samples: 10_000,
            ..Default::default()
        },
    )
    .expect("cosine instances");
    let set_a: std::collections::HashSet<DocId> = d2v.iter().map(|e| e.doc).collect();
    let set_b: std::collections::HashSet<DocId> = cs_full.iter().map(|e| e.doc).collect();
    let overlap = set_a.intersection(&set_b).count();
    println!(
        "top-{n} overlap between methods (exhaustive sampling): {overlap}/{n}; \
         both place the near-duplicate first: {}",
        d2v[0].doc == cs_full[0].doc
    );
}

/// T-GRAIN: sentence-level vs term-level counterfactual documents — the
/// granularity trade-off §II-C motivates.
pub fn granularity() {
    use credence_core::{explain_term_removal, TermRemovalConfig};
    println!("\n=== T-GRAIN: perturbation granularity (sentence vs term removal) ===");
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let (query, k) = (setup.demo.query, setup.demo.k);

    let (sr, t_sr) = timed(|| {
        explain_sentence_removal(&ranker, query, k, fake, &SentenceRemovalConfig::default())
            .expect("sr")
    });
    let (tr, t_tr) = timed(|| {
        explain_term_removal(&ranker, query, k, fake, &TermRemovalConfig::default()).expect("tr")
    });

    let mut rows = Vec::new();
    if let Some(e) = sr.explanations.first() {
        let total_terms: usize =
            credence_text::tokenize(&setup.index.document(fake).unwrap().body).len();
        let removed_tokens: usize = e
            .removed_text
            .iter()
            .map(|t| credence_text::tokenize(t).len())
            .sum();
        rows.push(vec![
            "sentence removal".into(),
            format!("{} sentences", e.removed.len()),
            format!("{removed_tokens}/{total_terms} tokens"),
            format!("{}", e.candidates_evaluated),
            format!("{}", e.new_rank),
            "yes".into(),
            ms(t_sr),
        ]);
    }
    if let Some(e) = tr.explanations.first() {
        rows.push(vec![
            "term removal".into(),
            format!("{} terms", e.removed_terms.len()),
            format!("{:?}", e.removed_terms),
            format!("{}", e.candidates_evaluated),
            format!("{}", e.new_rank),
            "no (drops words mid-sentence)".into(),
            ms(t_tr),
        ]);
    }
    print_table(
        "granularity trade-off on the demo fake-news article",
        &[
            "granularity",
            "size",
            "removed",
            "evals",
            "new rank",
            "grammatical",
            "ms",
        ],
        &rows,
    );
    println!(
        "shape: term removal is more surgical (fewer tokens changed) but produces\n\
         ungrammatical text — the reason §II-C perturbs whole sentences."
    );
}

/// T-SALIENCY: occlusion saliency vs counterfactuals — does the top-saliency
/// set suffice to change the ranking?
pub fn saliency_comparison() {
    use credence_core::{explain_saliency, SaliencyUnit};
    use credence_rank::rerank_pool;
    println!("\n=== T-SALIENCY: saliency baseline vs counterfactual explanations ===");
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let (query, k) = (setup.demo.query, setup.demo.k);

    let saliency =
        explain_saliency(&ranker, query, fake, SaliencyUnit::Sentence).expect("saliency");
    let sr = explain_sentence_removal(&ranker, query, k, fake, &SentenceRemovalConfig::default())
        .expect("sr");
    let cf = &sr.explanations[0];

    let ranking = rank_corpus(&ranker, query);
    let pool = ranking.top_k(k + 1);
    let sentences = credence_text::split_sentences(&setup.index.document(fake).unwrap().body);

    // Remove the top-m saliency sentences; at what m does the ranking flip?
    let mut rows = Vec::new();
    for m in 1..=3usize {
        let removed: std::collections::HashSet<usize> =
            saliency.weights.iter().take(m).map(|w| w.index).collect();
        let body: String = sentences
            .iter()
            .filter(|s| !removed.contains(&s.index))
            .map(|s| s.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let new_rank = rerank_pool(&ranker, query, &pool, Some((fake, &body)))
            .into_iter()
            .find(|r| r.substituted)
            .map(|r| r.new_rank)
            .unwrap_or(0);
        rows.push(vec![
            format!("top-{m} saliency sentences"),
            format!("{:?}", {
                let mut v: Vec<usize> = removed.iter().copied().collect();
                v.sort_unstable();
                v
            }),
            format!("{new_rank}"),
            (new_rank > k).to_string(),
        ]);
    }
    rows.push(vec![
        "counterfactual (minimal)".into(),
        format!("{:?}", cf.removed),
        format!("{}", cf.new_rank),
        "true".into(),
    ]);
    print_table(
        "removing top-saliency sentences vs the counterfactual set",
        &["strategy", "sentences removed", "new rank", "valid CF"],
        &rows,
    );
    println!(
        "shape: saliency says which sentences *matter*; only the counterfactual\n\
         search certifies a minimal set that actually flips relevance."
    );
}

/// T-AGREE: how much the black-box models disagree (why explanations are
/// model-specific).
pub fn ranker_agreement() {
    use credence_core::metrics::{jaccard_at_k, kendall_tau};
    println!("\n=== T-AGREE: ranking agreement between black-box models ===");
    let setup = DemoSetup::build();
    let index = &setup.index;
    let bm25 = Bm25Ranker::new(index, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(index, QlSmoothing::default());
    let neural = NeuralSimRanker::train(
        index,
        NeuralSimConfig {
            embedding: credence_embed::Word2VecConfig {
                dim: 32,
                epochs: 3,
                ..Default::default()
            },
            ..NeuralSimConfig::default()
        },
    );
    let models: Vec<(&str, &dyn Ranker)> = vec![
        ("bm25", &bm25),
        ("ql-dirichlet", &ql),
        ("neural-sim", &neural),
    ];
    let queries = ["covid outbreak", "covid vaccine", "5g network"];

    let mut rows = Vec::new();
    for i in 0..models.len() {
        for j in i + 1..models.len() {
            let mut taus = Vec::new();
            let mut jaccards = Vec::new();
            for q in &queries {
                let a = rank_corpus(models[i].1, q);
                let b = rank_corpus(models[j].1, q);
                if let Some(t) = kendall_tau(&a, &b) {
                    taus.push(t);
                }
                jaccards.push(jaccard_at_k(&a, &b, 10));
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            rows.push(vec![
                format!("{} vs {}", models[i].0, models[j].0),
                format!("{:.2}", mean(&taus)),
                format!("{:.2}", mean(&jaccards)),
            ]);
        }
    }
    print_table(
        "agreement over 3 demo queries",
        &["model pair", "kendall tau", "jaccard@10"],
        &rows,
    );
    println!(
        "shape: models correlate but do not coincide — the explanations are\n\
         genuinely properties of the explained model, not of the corpus."
    );
}

/// FUTURE: feature-level counterfactuals over a feature-aware ranker — the
/// paper's §II-A future work, demonstrated.
pub fn feature_future_work() {
    use credence_core::{explain_feature_changes, FeatureCfConfig};
    use credence_rank::{FeatureRanker, FeatureSchema};
    use credence_rng::rngs::StdRng;
    use credence_rng::{Rng, SeedableRng};

    println!("\n=== FUTURE: feature-level counterfactuals (paper §II-A future work) ===");
    let setup = DemoSetup::build();
    let index = &setup.index;
    // Synthetic but plausible features: seeded recency/popularity/preference.
    let mut rng = StdRng::seed_from_u64(2026);
    let features: Vec<Vec<f64>> = (0..index.num_docs())
        .map(|_| {
            vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    let ranker = FeatureRanker::new(
        index,
        Bm25Ranker::new(index, Bm25Params::default()),
        FeatureSchema::new(["recency", "popularity", "preference"]),
        vec![0.8, 0.5, 0.4],
        features,
    );
    let (query, k) = (setup.demo.query, setup.demo.k);
    let ranking = rank_corpus(&ranker, query);
    let top = ranking.top_k(k);

    let mut rows = Vec::new();
    for &doc in top.iter().take(5) {
        match explain_feature_changes(&ranker, query, k, doc, &FeatureCfConfig::default()) {
            Err(e) => rows.push(vec![
                format!("{doc}"),
                format!("({e})"),
                "-".into(),
                "-".into(),
            ]),
            Ok(result) => match result.explanations.first() {
                None => rows.push(vec![
                    format!("{doc}"),
                    "no feature change suffices (text dominates)".into(),
                    "-".into(),
                    format!("{}", result.candidates_evaluated),
                ]),
                Some(e) => {
                    let changes: Vec<String> = e
                        .changes
                        .iter()
                        .map(|c| format!("{}: {:.2}->{:.1}", c.name, c.from, c.to))
                        .collect();
                    rows.push(vec![
                        format!("{doc}"),
                        changes.join(", "),
                        format!("{} -> {}", e.old_rank, e.new_rank),
                        format!("{}", e.candidates_evaluated),
                    ]);
                }
            },
        }
    }
    print_table(
        "minimal feature changes that push top-10 docs past k (demo corpus + synthetic features)",
        &["doc", "feature changes", "rank", "evals"],
        &rows,
    );
}

/// T-EFFECT: retrieval effectiveness of the black-box rankers against the
/// synthetic corpus's ground-truth topic labels — the sanity check that the
/// models being explained actually retrieve.
pub fn effectiveness() {
    use credence_rank::eval::{average_precision, ndcg_at_k, precision_at_k, Qrels};
    println!("\n=== T-EFFECT: retrieval effectiveness (synthetic ground truth) ===");
    let (corpus, index) = synth_index(200, 11);

    let bm25 = Bm25Ranker::new(&index, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(&index, QlSmoothing::default());
    let neural = NeuralSimRanker::train(
        &index,
        NeuralSimConfig {
            embedding: credence_embed::Word2VecConfig {
                dim: 32,
                epochs: 3,
                ..Default::default()
            },
            ..NeuralSimConfig::default()
        },
    );
    let models: Vec<&dyn Ranker> = vec![&bm25, &ql, &neural];

    let mut rows = Vec::new();
    for ranker in models {
        let mut p10 = 0.0;
        let mut map = 0.0;
        let mut ndcg = 0.0;
        let topics = corpus.config.num_topics;
        for topic in 0..topics {
            // One topical term plus two ambiguous background terms makes the
            // query realistic (perfect scores would say nothing).
            let query = format!("{} common0 common1", corpus.topic_query(topic, 1));
            let qrels = Qrels::from_pairs(
                corpus
                    .topics
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t == topic)
                    .map(|(d, _)| (DocId(d as u32), 1u32)),
            );
            let ranking = rank_corpus(ranker, &query);
            p10 += precision_at_k(&ranking, &qrels, 10);
            map += average_precision(&ranking, &qrels);
            ndcg += ndcg_at_k(&ranking, &qrels, 10);
        }
        let n = topics as f64;
        rows.push(vec![
            ranker.name().to_string(),
            format!("{:.2}", p10 / n),
            format!("{:.2}", map / n),
            format!("{:.2}", ndcg / n),
        ]);
    }
    print_table(
        "mean over 8 topic queries (200 synthetic docs, 25 relevant each)",
        &["ranker", "P@10", "MAP", "nDCG@10"],
        &rows,
    );
    println!(
        "shape: all three models retrieve on-topic documents far above chance\n\
         (random P@10 would be 0.125) — the rankings being explained are real."
    );
}
