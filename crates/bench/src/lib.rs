//! Shared fixtures and helpers for the experiment regenerators and the
//! std-only benches.
//!
//! Everything the EXPERIMENTS.md tables need lives here so the
//! `experiments` binary and the benches measure the same code paths with
//! the same inputs. The [`harness`] module is the offline replacement for
//! criterion; bench targets import its types from the crate root.

pub mod figures;
pub mod harness;
pub mod loadgen;
pub mod tables;

pub use harness::{BenchRecord, Bencher, BenchmarkGroup, BenchmarkId, Criterion, Throughput};

use std::time::{Duration, Instant};

use credence_corpus::{covid_demo_corpus, DemoCorpus, SynthConfig, SyntheticCorpus};
use credence_index::{Bm25Params, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

/// The demo setup every figure regenerator starts from.
pub struct DemoSetup {
    /// The corpus description (ids of the scenario documents).
    pub demo: DemoCorpus,
    /// The built index.
    pub index: InvertedIndex,
}

impl DemoSetup {
    /// Index the demo corpus.
    pub fn build() -> Self {
        let demo = covid_demo_corpus();
        let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
        Self { demo, index }
    }

    /// A BM25 ranker over the demo index (Anserini defaults).
    pub fn ranker(&self) -> Bm25Ranker<'_> {
        Bm25Ranker::new(&self.index, Bm25Params::default())
    }
}

/// Build a synthetic corpus + index at a given scale (documents), with the
/// rest of the generator left at defaults. Deterministic.
pub fn synth_index(num_docs: usize, seed: u64) -> (SyntheticCorpus, InvertedIndex) {
    let corpus = SyntheticCorpus::generate(SynthConfig {
        num_docs,
        seed,
        ..SynthConfig::default()
    });
    let index = InvertedIndex::build(corpus.docs.clone(), Analyzer::english());
    (corpus, index)
}

/// Time a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a fixed-width table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n--- {title} ---");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_setup_builds() {
        let setup = DemoSetup::build();
        assert!(setup.index.num_docs() >= 40);
        assert_eq!(setup.demo.k, 10);
    }

    #[test]
    fn synth_index_scales() {
        let (corpus, index) = synth_index(50, 1);
        assert_eq!(corpus.docs.len(), 50);
        assert_eq!(index.num_docs(), 50);
    }

    #[test]
    fn timing_and_formatting() {
        let (value, elapsed) = timed(|| 42);
        assert_eq!(value, 42);
        assert!(ms(elapsed).parse::<f64>().unwrap() >= 0.0);
    }
}
