//! Corpora for the CREDENCE reproduction.
//!
//! The paper demonstrates on a proprietary "COVID-19 Articles" corpus we do
//! not have. Per the substitution policy in `DESIGN.md`, [`demo`] recreates a
//! corpus exhibiting every phenomenon the demonstration scenarios (Figures
//! 2–5) depend on: a fake-news article ranked 3/10 for the query
//! `covid outbreak`, whose first and last sentences carry all the query
//! terms; distinguishing terms (*5G*, *microchip*, *bill gates*, *tracking*)
//! exclusive to it within the top-10; a near-duplicate of it, lacking the
//! query terms, living outside the ranking; and a rank-11 document for the
//! builder's reveal row.
//!
//! [`synth`] generates parameterised topical corpora (Zipfian term choice,
//! configurable scale) for the quantitative benchmarks, and [`loader`]
//! reads/writes JSONL and TSV corpora so external collections can be
//! plugged in.

#![warn(missing_docs)]

pub mod demo;
pub mod loader;
pub mod reviews;
pub mod synth;

pub use demo::{covid_demo_corpus, DemoCorpus};
pub use loader::{load_jsonl, load_tsv, save_jsonl, save_tsv, LoadError};
pub use reviews::{reviews_demo_corpus, ReviewsCorpus};
pub use synth::{SynthConfig, SyntheticCorpus};
