//! Parameterised synthetic corpora for the quantitative benchmarks.
//!
//! The scaling and ablation tables (EXPERIMENTS.md, T-SCALE/T-ABLATE) need
//! corpora of controllable size, vocabulary, and topical structure. The
//! generator produces documents from a configurable number of topics: each
//! document draws most of its terms Zipf-distributed from one topic's
//! vocabulary and the rest from a shared background vocabulary, grouped into
//! sentences so the sentence-removal explainer has realistic units to work
//! with. Generation is deterministic under the seed.

use credence_index::Document;
use credence_rng::rngs::StdRng;
use credence_rng::{Rng, SeedableRng};

/// Configuration for the synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Number of topics.
    pub num_topics: usize,
    /// Distinct terms per topic vocabulary.
    pub topic_vocab: usize,
    /// Distinct terms in the shared background vocabulary.
    pub background_vocab: usize,
    /// Words per sentence (min, max).
    pub sentence_len: (usize, usize),
    /// Sentences per document (min, max).
    pub sentences_per_doc: (usize, usize),
    /// Probability a word is drawn from the background vocabulary.
    pub background_prob: f64,
    /// Zipf skew exponent for within-vocabulary term choice.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            num_docs: 200,
            num_topics: 8,
            topic_vocab: 120,
            background_vocab: 300,
            sentence_len: (6, 14),
            sentences_per_doc: (4, 10),
            background_prob: 0.35,
            zipf_exponent: 1.1,
            seed: 42,
        }
    }
}

/// A generated corpus plus its ground-truth topic labels.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The documents.
    pub docs: Vec<Document>,
    /// Ground-truth topic of each document.
    pub topics: Vec<usize>,
    /// The configuration it was generated from.
    pub config: SynthConfig,
}

impl SyntheticCorpus {
    /// Generate a corpus from `config`.
    pub fn generate(config: SynthConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        assert!(config.topic_vocab > 0 && config.background_vocab > 0);
        assert!(config.sentence_len.0 >= 1 && config.sentence_len.0 <= config.sentence_len.1);
        assert!(
            config.sentences_per_doc.0 >= 1
                && config.sentences_per_doc.0 <= config.sentences_per_doc.1
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut docs = Vec::with_capacity(config.num_docs);
        let mut topics = Vec::with_capacity(config.num_docs);

        for i in 0..config.num_docs {
            let topic = i % config.num_topics;
            topics.push(topic);
            let n_sent = rng.gen_range(config.sentences_per_doc.0..=config.sentences_per_doc.1);
            let mut body = String::new();
            for s in 0..n_sent {
                if s > 0 {
                    body.push(' ');
                }
                let n_words = rng.gen_range(config.sentence_len.0..=config.sentence_len.1);
                for w in 0..n_words {
                    let word = if rng.gen_bool(config.background_prob) {
                        let idx = zipf(&mut rng, config.background_vocab, config.zipf_exponent);
                        format!("common{idx}")
                    } else {
                        let idx = zipf(&mut rng, config.topic_vocab, config.zipf_exponent);
                        format!("topic{topic}word{idx}")
                    };
                    if w == 0 {
                        // Capitalise the sentence start for the splitter.
                        let mut c = word.chars();
                        let first = c.next().expect("non-empty word").to_ascii_uppercase();
                        body.push(first);
                        body.push_str(c.as_str());
                    } else {
                        body.push(' ');
                        body.push_str(&word);
                    }
                }
                body.push('.');
            }
            docs.push(Document::new(
                format!("synth-{i:05}"),
                format!("Synthetic document {i} (topic {topic})"),
                body,
            ));
        }

        Self {
            docs,
            topics,
            config,
        }
    }

    /// A query of the `n` most frequent terms of one topic's vocabulary —
    /// guaranteed to retrieve that topic's documents preferentially.
    pub fn topic_query(&self, topic: usize, n: usize) -> String {
        (0..n)
            .map(|i| format!("topic{topic}word{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Draw a Zipf-distributed index in `0..n` (rank 0 most likely) by inverse
/// transform over the truncated harmonic cdf.
fn zipf<R: Rng>(rng: &mut R, n: usize, exponent: f64) -> usize {
    debug_assert!(n >= 1);
    // Truncated at n; small n keeps this cheap and exact.
    let total: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).sum();
    let mut x = rng.gen_range(0.0..total);
    for k in 1..=n {
        x -= 1.0 / (k as f64).powf(exponent);
        if x <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{search_top_k, Bm25Params, InvertedIndex};
    use credence_text::{split_sentences, Analyzer};

    fn small() -> SynthConfig {
        SynthConfig {
            num_docs: 60,
            num_topics: 4,
            topic_vocab: 40,
            background_vocab: 80,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticCorpus::generate(small());
        let b = SyntheticCorpus::generate(small());
        assert_eq!(a.docs[7].body, b.docs[7].body);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCorpus::generate(small());
        let b = SyntheticCorpus::generate(SynthConfig { seed: 7, ..small() });
        assert_ne!(a.docs[0].body, b.docs[0].body);
    }

    #[test]
    fn respects_document_count_and_labels() {
        let c = SyntheticCorpus::generate(small());
        assert_eq!(c.docs.len(), 60);
        assert_eq!(c.topics.len(), 60);
        assert!(c.topics.iter().all(|&t| t < 4));
    }

    #[test]
    fn documents_split_into_sentences() {
        let c = SyntheticCorpus::generate(small());
        for doc in &c.docs[..10] {
            let s = split_sentences(&doc.body);
            assert!(
                (c.config.sentences_per_doc.0..=c.config.sentences_per_doc.1).contains(&s.len()),
                "{} sentences",
                s.len()
            );
        }
    }

    #[test]
    fn topic_queries_retrieve_topic_documents() {
        let c = SyntheticCorpus::generate(small());
        let idx = InvertedIndex::build(c.docs.clone(), Analyzer::english());
        let q = idx.analyze_query(&c.topic_query(0, 3));
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 10);
        assert!(!hits.is_empty());
        let correct = hits.iter().filter(|h| c.topics[h.doc.index()] == 0).count();
        assert!(
            correct as f64 / hits.len() as f64 >= 0.8,
            "{correct}/{} hits on-topic",
            hits.len()
        );
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf(&mut rng, 10, 1.1)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn zipf_degenerate_n_one() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(zipf(&mut rng, 1, 1.1), 0);
    }
}
