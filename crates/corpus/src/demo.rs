//! The "COVID-19 Articles" demonstration corpus.
//!
//! The paper's running example (§III) plays out on a proprietary corpus of
//! COVID-19 articles. This module recreates a corpus with the same
//! *load-bearing phenomena*, so every demonstration scenario reproduces:
//!
//! * Figure 2 — the fake-news article ranks **3/10** for `covid outbreak`;
//!   its first and last sentences carry all of its `covid`/`outbreak`
//!   occurrences (importance 2 each), and removing *both* — but no single
//!   sentence — pushes it past `k = 10`.
//! * Figure 3 — distinguishing terms (`5g`, `microchip`, `bill`, `gates`,
//!   `tracking`) appear in no other top-10 document, so they carry top
//!   TF-IDF among the ranked set; appending `5g` lifts the article to rank
//!   2 and `5g microchip` to rank 1.
//! * Figure 4 — a near-duplicate of the fake-news article, minus the
//!   query-bearing sentences, exists in the corpus and is never retrieved
//!   for the original query.
//! * Figure 5 — an 11th-ranked document (a flu-outbreak story) exists for
//!   the builder's "revealed rank k+1" row.
//!
//! Document text that is visible in the paper's figures (the microchip
//! conspiracy passage) is quoted nearly verbatim; everything else is
//! synthetic filler that fixes the document-frequency profile the scenario
//! arithmetic needs.

use credence_index::Document;

/// The demo corpus plus the indices of the documents the scenarios refer to.
#[derive(Debug, Clone)]
pub struct DemoCorpus {
    /// All documents; index in this vector becomes the `DocId`.
    pub docs: Vec<Document>,
    /// Index of the fake-news article (target rank 3).
    pub fake_news: usize,
    /// Index of its near-duplicate lacking the query terms (Fig. 4).
    pub near_duplicate: usize,
    /// Index of the flu-outbreak story (target rank 11, Fig. 5's reveal).
    pub rank11: usize,
    /// The running-example query.
    pub query: &'static str,
    /// The running-example cutoff.
    pub k: usize,
}

/// Body of the fake-news article being explained throughout the paper.
///
/// Sentence 0 and the final sentence are the only ones containing `covid`
/// and `outbreak`; each therefore has importance 2 for the demo query.
pub const FAKE_NEWS_BODY: &str = "\
Attention loyal followers, the covid outbreak is a cover story invented by powerful insiders. \
5G tracking microchips are being secretly planted in each second dose of the vaccine, \
making people's arms magnetic and allowing shadowy agencies or global elites like Bill Gates \
to track those who are vaccinated. \
Gates recently said that eventually we will need digital certificates to prove immunity. \
Doctors, scientists and my next door neighbor, who does have RFID systems implanted under \
his skin, all agree that this theory is true. \
They have many ways to track us through our phones, through our credit cards, through other \
kinds of things. \
When 1500 American adults were asked in July whether the state is using the shot to \
microchip the population, 99 percent said it was definitely real. \
The covid outbreak should have been one of those moments that brought us together, but \
instead it has divided the country, so share and repost to spread the news.";

/// Body of the near-duplicate (Fig. 4): the same conspiracy passage without
/// the sentences that mention the query terms.
pub const NEAR_DUPLICATE_BODY: &str = "\
5G tracking microchips are being secretly planted in each second dose of the vaccine, \
making people's arms magnetic and allowing shadowy agencies or global elites like Bill Gates \
to track those who are vaccinated. \
Gates recently said that eventually we will need digital certificates to prove immunity. \
Doctors, scientists and my next door neighbor, who does have RFID systems implanted under \
his skin, all agree that this theory is true. \
They have many ways to track us through our phones, through our credit cards, through other \
kinds of things. \
When 1500 American adults were asked in July whether the state is using the shot to \
microchip the population, 99 percent said it was definitely real. \
Share and repost to spread the news before it disappears.";

/// Build the demonstration corpus.
///
/// Deterministic: the same documents in the same order every call.
pub fn covid_demo_corpus() -> DemoCorpus {
    let mut docs = Vec::new();
    let mut push = |name: &str, title: &str, body: &str| -> usize {
        docs.push(Document::new(name, title, body));
        docs.len() - 1
    };

    // --- Rank 1 target: dense coverage of both query terms. -------------
    push(
        "news-001",
        "Covid outbreak intensifies nationwide",
        "The covid outbreak intensified across the country on Monday. \
         Health officials reported record covid infections as the outbreak spread to every \
         province overnight. Hospitals treating covid patients warned that the outbreak is \
         straining capacity everywhere. Federal agencies released new covid guidance for \
         schools while governors coordinated a joint covid response as the outbreak continued. \
         Experts cautioned that the covid outbreak may not peak until next month.",
    );

    // --- Rank 2 target: strong but lighter coverage. ---------------------
    push(
        "news-002",
        "City confirms covid cluster downtown",
        "City health officials confirmed a covid cluster downtown on Friday. \
         The outbreak began at a crowded indoor concert, investigators said. \
         Contact notification reached covid patients within hours, and the main covid \
         testing site reopened on Saturday to manage the outbreak.",
    );

    // --- Rank 3 target: the fake-news article. ---------------------------
    let fake_news = push(
        "fake-news-644529",
        "The truth they are hiding from you",
        FAKE_NEWS_BODY,
    );

    // --- Ranks 4-10 targets: one covid + one outbreak mention each. ------
    push(
        "news-003",
        "Schools adapt during health emergency",
        "Teachers spent the week moving lessons online as the covid emergency closed \
         classrooms across the district. Administrators said remote schedules would continue \
         until the outbreak subsides. Parents juggled work and childcare while counselors \
         checked in on students. The district promised laptops for every family that needs \
         one and free meals at pickup points across the city.",
    );
    push(
        "news-004",
        "Economic fallout widens",
        "Economists warned on Tuesday that the covid downturn could last through the winter. \
         Small businesses reported steep losses since the outbreak forced them to close \
         their doors. Retail owners asked lawmakers for relief funds and rent deferrals. \
         Analysts said consumer confidence fell for the third straight month while savings \
         rates climbed to historic highs across the region.",
    );
    push(
        "news-005",
        "Travel restrictions extended",
        "Airlines cancelled hundreds of flights after new covid travel rules took effect. \
         Border agencies extended screening measures for travellers arriving from regions \
         where the outbreak remains severe. Tour operators refunded spring bookings and \
         cruise lines suspended departures. Industry groups estimated losses in the billions \
         and asked for coordinated international reopening standards.",
    );
    push(
        "news-006",
        "Season suspended for local teams",
        "The regional league suspended its season on Wednesday citing covid safety concerns. \
         Players and coaches entered testing protocols as the outbreak touched two locker \
         rooms. Fans were refunded for remaining home games. Team owners discussed playing \
         in empty stadiums next month while broadcasters renegotiated schedules around the \
         shortened calendar.",
    );
    push(
        "news-007",
        "Vaccine rollout reaches rural clinics",
        "Rural clinics received their first covid vaccine shipments on Thursday morning. \
         Nurses scheduled appointments for elderly residents hoping to blunt the outbreak \
         before winter. County health departments opened drive-through sites and published \
         eligibility timelines. Volunteers directed traffic while pharmacists drew doses in \
         cold-chain trailers parked outside community centers.",
    );
    push(
        "news-008",
        "Mask guidance updated for transit",
        "Transit authorities updated their covid mask guidance for buses and trains. \
         Officials said the change reflects how the outbreak has evolved in dense urban \
         corridors. Riders will find dispensers at major stations and signage in three \
         languages. Drivers received fresh supplies and the agency expanded cleaning crews \
         on night routes through downtown.",
    );
    push(
        "news-009",
        "Restaurants pivot to patio dining",
        "Restaurant owners rebuilt sidewalks into patios as covid rules limited indoor \
         seating. Chefs shortened menus to survive the outbreak and delivery co-ops formed \
         to avoid app fees. The city waived permit costs through spring. Diners booked \
         heated tents weeks in advance while suppliers retooled for takeaway packaging \
         across the metro area.",
    );

    // --- Rank 11 target: outbreak without covid (the builder's reveal). --
    let rank11 = push(
        "news-010",
        "Flu outbreak closes elementary school",
        "An influenza outbreak closed the elementary school on Cedar Street for two days. \
         Custodians disinfected classrooms while the nurse tracked absences. The outbreak \
         mostly affected younger students, the principal said, and classes resume Monday.",
    );

    // --- The near-duplicate (Fig. 4): outside the ranking entirely. ------
    let near_duplicate = push(
        "fake-news-copy-101",
        "They will delete this soon",
        NEAR_DUPLICATE_BODY,
    );

    // --- Covid-without-outbreak stories (rank 12+ for the demo query). ---
    push(
        "news-011",
        "Covid research consortium funded",
        "Universities announced a covid research consortium funded by a national grant. \
         Laboratories will share genomic data and clinical findings through an open portal. \
         Researchers hope the collaboration shortens review cycles for treatments.",
    );
    push(
        "news-012",
        "Covid antibody study recruits volunteers",
        "A hospital network began recruiting volunteers for a covid antibody study. \
         Participants give blood samples quarterly and complete symptom diaries. \
         Scientists want to understand how long immunity lasts across age groups.",
    );

    // --- 5G technology stories: fix df(5g) so its idf is moderate. -------
    push(
        "tech-001",
        "Carrier lights up 5g downtown",
        "The regional carrier switched on its 5g network downtown on Monday. Engineers said \
         the 5g rollout will reach the suburbs by summer. Early users reported faster \
         downloads on compatible phones.",
    );
    push(
        "tech-002",
        "5g towers approved by council vote",
        "The planning committee approved twelve new 5g towers after a lengthy public \
         hearing. Residents asked about property values and the committee published \
         engineering studies on the municipal website about the 5g deployment.",
    );
    push(
        "tech-003",
        "Factory automation embraces 5g",
        "A tractor plant wired its assembly line with private 5g radios this quarter. \
         Managers said the 5g link lets robots coordinate welding without cables. \
         The pilot cut downtime during retooling by a third.",
    );
    push(
        "tech-004",
        "Rural broadband pilot pairs satellites with 5g",
        "A rural broadband pilot will pair low-orbit satellites with 5g base stations. \
         The county won a federal grant to connect farms and schools. Installers begin \
         surveying tower sites next week.",
    );
    push(
        "tech-005",
        "Stadium upgrades network for fans",
        "The stadium finished a 5g upgrade before the championship weekend. Fans can \
         stream replays from their seats and concession lines moved faster with \
         handheld terminals connected over the new 5g network.",
    );

    // --- Tracking stories: fix df(track*) without touching the top-10. ---
    push(
        "tech-006",
        "Package tracking overhauled",
        "The postal service overhauled package tracking ahead of the holidays. Customers \
         can now see tracking updates at every sorting hub. Couriers scan parcels with \
         new handhelds that upload locations instantly.",
    );
    push(
        "tech-007",
        "Fitness tracking app adds sleep goals",
        "A popular fitness tracking app added sleep goals and recovery scores. The update \
         lets runners track training load across weeks. Reviewers praised the redesigned \
         charts and the quieter notifications.",
    );
    push(
        "tech-008",
        "Wildlife researchers track caribou herds",
        "Wildlife researchers fitted caribou with collars to track seasonal migration. \
         The team will track the herd through two winters and publish movement maps for \
         conservation planners.",
    );

    // --- Health stories without covid/outbreak. --------------------------
    push(
        "health-001",
        "Clinic expands childhood vaccine hours",
        "The downtown clinic expanded evening hours for childhood vaccine appointments. \
         Nurses said demand rises every autumn before school forms are due. Walk-in slots \
         open on Saturdays starting next month.",
    );
    push(
        "health-002",
        "Hospital breaks ground on new wing",
        "The county hospital broke ground on a surgical wing expected to open in two years. \
         Donors funded an imaging suite and the board approved hiring plans for eighty \
         nurses and technicians.",
    );
    push(
        "health-003",
        "Nutrition program reaches seniors",
        "A nutrition program began delivering meals to homebound seniors five days a week. \
         Dietitians plan menus around common prescriptions and volunteers report wellness \
         concerns back to case managers.",
    );
    push(
        "health-004",
        "Digital certificates debated for clinics",
        "Regulators debated digital certificates for sharing medical records between \
         clinics. Privacy advocates asked for audit trails while vendors promised \
         encryption by default. A draft standard circulates this fall.",
    );

    // --- Flu season stories (no covid, no outbreak). ---------------------
    push(
        "health-005",
        "Flu season arrives early",
        "Pharmacists reported an early start to flu season with brisk demand for shots. \
         Clinics added weekend hours and employers hosted on-site flu vaccination days \
         to keep absences down.",
    );
    push(
        "health-006",
        "Flu shot myths debunked",
        "Doctors spent the week debunking flu shot myths on local radio. The flu vaccine \
         cannot cause the flu, physicians explained, and mild soreness fades within a day.",
    );

    // --- Gardening. -------------------------------------------------------
    push(
        "life-001",
        "Community garden doubles plots",
        "The community garden doubled its plots after a record waitlist. Volunteers built \
         raised beds and a tool library. Newcomers get mentoring from veteran growers \
         through the first season.",
    );
    push(
        "life-002",
        "Native plants for dry summers",
        "Landscapers recommended native plants for yards facing watering limits. Yarrow, \
         sage and coneflower survive dry summers and feed pollinators. Nurseries report \
         shortages of the most popular varieties.",
    );
    push(
        "life-003",
        "Tomato growers swap seeds",
        "Tomato growers swapped heirloom seeds at the spring fair. Growers traded advice \
         about blight, staking and soil mixes. The club donates surplus seedlings to \
         school gardens every year.",
    );

    // --- Sports. -----------------------------------------------------------
    push(
        "sport-001",
        "Marathon route adds river crossing",
        "Organizers unveiled a marathon route that crosses the river twice. Runners \
         praised the flatter final mile. Registration filled within a week and a lottery \
         will allocate the remaining bibs.",
    );
    push(
        "sport-002",
        "Rowing club wins regatta",
        "The city rowing club won the regatta by two boat lengths. Coaches credited a \
         winter of indoor training. The victory qualifies the crew for nationals in \
         August.",
    );
    push(
        "sport-003",
        "Youth soccer expands scholarships",
        "The youth soccer league expanded scholarships to cover equipment and travel. \
         Sponsors matched donations during the spring drive and coaches volunteered \
         extra clinics on Sundays.",
    );

    // --- Economy. ----------------------------------------------------------
    push(
        "econ-001",
        "Housing starts rebound",
        "Housing starts rebounded last quarter as lumber prices eased. Builders broke \
         ground on townhomes near the transit line. Analysts expect permits to keep \
         climbing through autumn.",
    );
    push(
        "econ-002",
        "Port traffic sets record",
        "The port moved a record number of containers in May. Longshore crews added \
         night shifts and the rail yard extended sidings to clear backlogs faster.",
    );
    push(
        "econ-003",
        "Farmers market sales climb",
        "Farmers market sales climbed for the fifth straight year. Vendors credited \
         loyalty programs and prepared food stalls. The market board plans a covered \
         pavilion for winter weekends.",
    );

    // --- Civic/state fillers (fix df(state), df(council), etc.). ----------
    push(
        "civic-001",
        "Council adopts budget after long debate",
        "The council adopted the city budget after a long debate over road repairs. \
         Libraries keep Sunday hours and the fire department gains a training tower. \
         The vote passed seven to two.",
    );
    push(
        "civic-002",
        "State parks extend camping season",
        "State parks will extend the camping season by three weeks this year. Rangers \
         added shower facilities at two lakes and the state reservation site now shows \
         live availability.",
    );
    push(
        "civic-003",
        "State budget sets aside storm funds",
        "The state budget sets aside storm recovery funds for coastal counties. \
         Legislators praised the bipartisan deal and the governor signed it on the \
         capitol steps.",
    );
    push(
        "civic-004",
        "Transit authority tests electric buses",
        "The transit authority began testing electric buses on two downtown routes. \
         Drivers reported smooth acceleration and depot crews installed fast chargers \
         funded by a state grant.",
    );
    push(
        "weather-001",
        "Storm brings record rainfall",
        "A slow-moving storm brought record rainfall to the valley. Crews cleared storm \
         drains overnight and the river crested just below flood stage by morning.",
    );
    push(
        "weather-002",
        "Heat advisory issued for weekend",
        "Forecasters issued a heat advisory for the weekend. Cooling centers open at \
         noon and officials urged residents to check on elderly neighbors and pets.",
    );

    DemoCorpus {
        docs,
        fake_news,
        near_duplicate,
        rank11,
        query: "covid outbreak",
        k: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{search_top_k, Bm25Params, DocId, InvertedIndex};
    use credence_text::{split_sentences, Analyzer};

    fn ranked(query: &str) -> (InvertedIndex, Vec<DocId>, DemoCorpus) {
        let demo = covid_demo_corpus();
        let idx = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
        let q = idx.analyze_query(query);
        let hits = search_top_k(&idx, Bm25Params::default(), &q, idx.num_docs());
        (idx, hits.iter().map(|h| h.doc).collect(), demo)
    }

    #[test]
    fn fake_news_ranks_third_for_demo_query() {
        let (_, order, demo) = ranked(demo_query());
        assert_eq!(order[2], DocId(demo.fake_news as u32), "order: {order:?}");
    }

    fn demo_query() -> &'static str {
        covid_demo_corpus().query
    }

    #[test]
    fn rank11_is_the_flu_outbreak_story() {
        let (_, order, demo) = ranked(demo_query());
        assert!(order.len() >= 11, "need at least 11 matching docs");
        assert_eq!(order[10], DocId(demo.rank11 as u32));
    }

    #[test]
    fn near_duplicate_is_not_retrieved() {
        let (_, order, demo) = ranked(demo_query());
        assert!(order
            .iter()
            .all(|&d| d != DocId(demo.near_duplicate as u32)));
    }

    #[test]
    fn top_two_are_the_dense_news_stories() {
        let (idx, order, _) = ranked(demo_query());
        let names: Vec<&str> = order[..2]
            .iter()
            .map(|&d| idx.document(d).unwrap().name.as_str())
            .collect();
        assert_eq!(names, vec!["news-001", "news-002"]);
    }

    #[test]
    fn fake_news_query_terms_confined_to_first_and_last_sentence() {
        let demo = covid_demo_corpus();
        let sentences = split_sentences(FAKE_NEWS_BODY);
        assert!(
            sentences.len() >= 6,
            "fake article should be multi-sentence"
        );
        let matching = Analyzer::matching();
        for (i, s) in sentences.iter().enumerate() {
            let terms = matching.analyze(&s.text);
            let hits = terms
                .iter()
                .filter(|t| t.as_str() == "covid" || t.as_str() == "outbreak")
                .count();
            if i == 0 || i == sentences.len() - 1 {
                assert_eq!(hits, 2, "sentence {i} should have importance 2");
            } else {
                assert_eq!(hits, 0, "sentence {i} should have importance 0");
            }
        }
        let _ = demo;
    }

    #[test]
    fn distinguishing_terms_exclusive_to_fake_news_in_top10() {
        let (idx, order, demo) = ranked(demo_query());
        let stem = Analyzer::english();
        for raw in ["5g", "microchip", "bill", "gates", "rfid"] {
            let term = stem.analyze_term(raw).unwrap();
            let tid = idx
                .vocabulary()
                .id(&term)
                .unwrap_or_else(|| panic!("term {term} must exist in corpus vocabulary"));
            for &d in &order[..10] {
                if d == DocId(demo.fake_news as u32) {
                    assert!(idx.term_freq(d, tid) > 0, "{term} must be in fake news");
                } else {
                    assert_eq!(idx.term_freq(d, tid), 0, "{term} leaked into {d}");
                }
            }
        }
    }

    #[test]
    fn augmented_query_5g_reaches_rank_two() {
        let (_, order, demo) = ranked("covid outbreak 5g");
        let pos = order
            .iter()
            .position(|&d| d == DocId(demo.fake_news as u32))
            .expect("fake news must match augmented query");
        assert_eq!(pos + 1, 2, "rank for +5g, order: {order:?}");
    }

    #[test]
    fn augmented_query_5g_microchip_reaches_rank_one() {
        let (_, order, demo) = ranked("covid outbreak 5g microchip");
        assert_eq!(order[0], DocId(demo.fake_news as u32));
    }

    #[test]
    fn removing_both_key_sentences_zeroes_the_score() {
        let demo = covid_demo_corpus();
        let idx = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
        let sentences = split_sentences(FAKE_NEWS_BODY);
        let kept: Vec<String> = sentences[1..sentences.len() - 1]
            .iter()
            .map(|s| s.text.clone())
            .collect();
        let body = kept.join(" ");
        let q = idx.analyze_query(demo.query);
        let (terms, len) = idx.analyze_adhoc(&body);
        let score = credence_index::score::bm25_score_adhoc(
            Bm25Params::default(),
            idx.stats(),
            &q,
            &terms,
            len,
        );
        assert_eq!(score, 0.0);
    }

    #[test]
    fn removing_one_key_sentence_keeps_it_relevant() {
        // Dropping only the first sentence must leave the article inside the
        // top-10 (above the rank-11 flu story), so a one-sentence perturbation
        // is NOT a valid counterfactual — forcing the minimal pair of Fig. 2.
        let demo = covid_demo_corpus();
        let idx = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
        let sentences = split_sentences(FAKE_NEWS_BODY);
        let kept: Vec<String> = sentences[1..].iter().map(|s| s.text.clone()).collect();
        let body = kept.join(" ");
        let q = idx.analyze_query(demo.query);
        let (terms, len) = idx.analyze_adhoc(&body);
        let perturbed = credence_index::score::bm25_score_adhoc(
            Bm25Params::default(),
            idx.stats(),
            &q,
            &terms,
            len,
        );
        let rank11_score = credence_index::score::bm25_score_indexed(
            Bm25Params::default(),
            &idx,
            &q,
            DocId(demo.rank11 as u32),
        );
        assert!(
            perturbed > rank11_score,
            "one-sentence removal should stay relevant: {perturbed} vs {rank11_score}"
        );
    }

    #[test]
    fn near_duplicate_shares_conspiracy_vocabulary() {
        let demo = covid_demo_corpus();
        let english = Analyzer::english();
        let fake: std::collections::HashSet<String> =
            english.analyze(FAKE_NEWS_BODY).into_iter().collect();
        let dup: std::collections::HashSet<String> =
            english.analyze(NEAR_DUPLICATE_BODY).into_iter().collect();
        let overlap = fake.intersection(&dup).count();
        assert!(
            overlap as f64 / dup.len() as f64 > 0.9,
            "near-duplicate should be almost a subset"
        );
        assert!(!dup.contains("covid"));
        assert!(!dup.contains("outbreak"));
        let _ = demo;
    }

    #[test]
    fn corpus_has_realistic_scale() {
        let demo = covid_demo_corpus();
        assert!(demo.docs.len() >= 40, "got {}", demo.docs.len());
        // Names are unique.
        let names: std::collections::HashSet<&str> =
            demo.docs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), demo.docs.len());
    }
}
