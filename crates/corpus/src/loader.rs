//! Corpus loaders and writers (JSONL and TSV).
//!
//! External collections plug into the reproduction through two simple
//! formats:
//!
//! * **JSONL** — one JSON object per line with `name`, `title`, `body`
//!   string fields (the format Pyserini's `JsonCollection` uses, with `id`
//!   accepted as an alias for `name` and `contents` for `body`);
//! * **TSV** — `name<TAB>title<TAB>body`, one document per line.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use credence_index::Document;
use credence_json::{obj, parse, to_string, Value};

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Malformed { line, reason } => {
                write!(f, "malformed corpus line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse one JSONL record into a document.
fn doc_from_json(value: &Value, line: usize) -> Result<Document, LoadError> {
    let name = value
        .get("name")
        .or_else(|| value.get("id"))
        .and_then(Value::as_str)
        .ok_or_else(|| LoadError::Malformed {
            line,
            reason: "missing string field 'name' (or 'id')".into(),
        })?;
    let body = value
        .get("body")
        .or_else(|| value.get("contents"))
        .and_then(Value::as_str)
        .ok_or_else(|| LoadError::Malformed {
            line,
            reason: "missing string field 'body' (or 'contents')".into(),
        })?;
    let title = value.get("title").and_then(Value::as_str).unwrap_or("");
    Ok(Document::new(name, title, body))
}

/// Load a JSONL corpus from a string (one JSON object per non-empty line).
pub fn parse_jsonl(input: &str) -> Result<Vec<Document>, LoadError> {
    let mut docs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| LoadError::Malformed {
            line: line_no,
            reason: e.to_string(),
        })?;
        docs.push(doc_from_json(&value, line_no)?);
    }
    Ok(docs)
}

/// Load a JSONL corpus from a file.
pub fn load_jsonl(path: &Path) -> Result<Vec<Document>, LoadError> {
    parse_jsonl(&fs::read_to_string(path)?)
}

/// Serialise documents as JSONL.
pub fn to_jsonl(docs: &[Document]) -> String {
    let mut out = String::new();
    for d in docs {
        let v = obj([
            ("name", Value::from(d.name.as_str())),
            ("title", Value::from(d.title.as_str())),
            ("body", Value::from(d.body.as_str())),
        ]);
        out.push_str(&to_string(&v));
        out.push('\n');
    }
    out
}

/// Write documents to a JSONL file.
pub fn save_jsonl(path: &Path, docs: &[Document]) -> Result<(), LoadError> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_jsonl(docs).as_bytes())?;
    Ok(())
}

/// Load a TSV corpus from a string: `name<TAB>title<TAB>body` per line.
/// Tabs and newlines inside the body must be escaped as `\t` / `\n`.
pub fn parse_tsv(input: &str) -> Result<Vec<Document>, LoadError> {
    let mut docs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let name = parts.next().unwrap_or("");
        let title = parts.next().ok_or_else(|| LoadError::Malformed {
            line: line_no,
            reason: "expected 3 tab-separated fields".into(),
        })?;
        let body = parts.next().ok_or_else(|| LoadError::Malformed {
            line: line_no,
            reason: "expected 3 tab-separated fields".into(),
        })?;
        docs.push(Document::new(
            unescape_tsv(name),
            unescape_tsv(title),
            unescape_tsv(body),
        ));
    }
    Ok(docs)
}

/// Load a TSV corpus from a file.
pub fn load_tsv(path: &Path) -> Result<Vec<Document>, LoadError> {
    parse_tsv(&fs::read_to_string(path)?)
}

/// Serialise documents as TSV.
pub fn to_tsv(docs: &[Document]) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&escape_tsv(&d.name));
        out.push('\t');
        out.push_str(&escape_tsv(&d.title));
        out.push('\t');
        out.push_str(&escape_tsv(&d.body));
        out.push('\n');
    }
    out
}

/// Write documents to a TSV file.
pub fn save_tsv(path: &Path, docs: &[Document]) -> Result<(), LoadError> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_tsv(docs).as_bytes())?;
    Ok(())
}

fn escape_tsv(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape_tsv(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_docs() -> Vec<Document> {
        vec![
            Document::new("d1", "First", "Body one."),
            Document::new("d2", "With \"quotes\"", "Tab\there\nand newline."),
            Document::new("d3", "", "Unicode café 😀."),
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let docs = sample_docs();
        let text = to_jsonl(&docs);
        let loaded = parse_jsonl(&text).unwrap();
        assert_eq!(docs, loaded);
    }

    #[test]
    fn tsv_round_trip() {
        let docs = sample_docs();
        let text = to_tsv(&docs);
        let loaded = parse_tsv(&text).unwrap();
        assert_eq!(docs, loaded);
    }

    #[test]
    fn jsonl_accepts_pyserini_aliases() {
        let docs = parse_jsonl(r#"{"id": "doc7", "contents": "the body text"}"#).unwrap();
        assert_eq!(docs[0].name, "doc7");
        assert_eq!(docs[0].body, "the body text");
        assert_eq!(docs[0].title, "");
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let input = "\n{\"name\":\"a\",\"body\":\"b\"}\n\n";
        assert_eq!(parse_jsonl(input).unwrap().len(), 1);
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let input = "{\"name\":\"a\",\"body\":\"b\"}\nnot json\n";
        match parse_jsonl(input) {
            Err(LoadError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_missing_fields_rejected() {
        assert!(parse_jsonl(r#"{"name":"a"}"#).is_err());
        assert!(parse_jsonl(r#"{"body":"b"}"#).is_err());
        assert!(parse_jsonl(r#"{"name":1,"body":"b"}"#).is_err());
    }

    #[test]
    fn tsv_missing_fields_rejected() {
        match parse_tsv("only-name\n") {
            Err(LoadError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected malformed error, got {other:?}"),
        }
        assert!(parse_tsv("name\ttitle-without-body\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("credence_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let docs = sample_docs();

        let jsonl = dir.join("corpus.jsonl");
        save_jsonl(&jsonl, &docs).unwrap();
        assert_eq!(load_jsonl(&jsonl).unwrap(), docs);

        let tsv = dir.join("corpus.tsv");
        save_tsv(&tsv, &docs).unwrap();
        assert_eq!(load_tsv(&tsv).unwrap(), docs);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_jsonl(Path::new("/nonexistent/nope.jsonl")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn tsv_unescape_handles_unknown_escapes() {
        assert_eq!(unescape_tsv("a\\qb"), "a\\qb");
        assert_eq!(unescape_tsv("trailing\\"), "trailing\\");
    }
}
