//! A second built-in corpus: product reviews with an astroturfed entry.
//!
//! The paper's demo corpus is COVID-19 misinformation; explanation needs are
//! identical in *any* ranked-retrieval domain. This corpus lets examples and
//! tests show the pipeline on product reviews: a shopper searches
//! `battery life` over wireless-earbud reviews, and a paid-looking review
//! ranks highly. Its giveaway vocabulary (*promo*, *coupon*, *influencer*)
//! is exclusive to it among the ranked set — so query-augmentation surfaces
//! the astroturfing cues just as Figure 3 surfaced *5G*/*microchip* — and a
//! near-duplicate shill review (same template, different product) sits
//! outside the ranking for the instance-based explainers to find.

use credence_index::Document;

/// The review corpus plus the indices of the scenario documents.
#[derive(Debug, Clone)]
pub struct ReviewsCorpus {
    /// All documents.
    pub docs: Vec<Document>,
    /// Index of the astroturfed review (ranked for the demo query).
    pub shill: usize,
    /// Index of its near-duplicate for a different product (not ranked).
    pub shill_copy: usize,
    /// The scenario query.
    pub query: &'static str,
    /// The scenario cutoff.
    pub k: usize,
}

/// Build the product-reviews corpus.
pub fn reviews_demo_corpus() -> ReviewsCorpus {
    let mut docs = Vec::new();
    let mut push = |name: &str, title: &str, body: &str| -> usize {
        docs.push(Document::new(name, title, body));
        docs.len() - 1
    };

    // Strong genuine reviews about battery life.
    push(
        "rev-001",
        "Battery life is superb",
        "The battery life on these earbuds is superb. I measured nine hours of battery \
         per charge and the case adds four more charges. Battery life like this makes \
         long flights easy, and the battery indicator is accurate to the minute.",
    );
    push(
        "rev-002",
        "Two weeks on one charge routine",
        "After two weeks the battery life still impresses me. I charge the case on \
         Sundays and the battery never dies mid-commute. For gym use the battery life \
         is more than enough.",
    );

    // The astroturfed review: relevant terms plus giveaway vocabulary.
    let shill = push(
        "rev-spon-777",
        "Best purchase ever!!!",
        "Amazing battery life, totally life changing! Use my promo code EARBUDS20 for a \
         coupon at checkout. As an influencer I test everything and this brand sent me \
         their flagship for an honest unboxing. Follow my channel for giveaway news. \
         The battery life beats every competitor, trust me.",
    );

    // Genuine mid-tier reviews (one battery mention each).
    push(
        "rev-003",
        "Good sound, average battery",
        "Sound quality is warm and detailed. The battery life is average: five hours \
         with noise cancelling on. Comfort is excellent for small ears and the touch \
         controls rarely misfire.",
    );
    push(
        "rev-004",
        "Solid commuter pick",
        "These survived a rainy month of commuting. Battery life gets me through the \
         week with top-ups. Pairing is instant with both my laptop and phone, and the \
         mic is passable for calls.",
    );
    push(
        "rev-005",
        "Decent for the price",
        "For the price the battery life is acceptable and the case feels sturdy. \
         Bass is boomy out of the box but the app's equaliser fixes it quickly.",
    );
    push(
        "rev-006",
        "Honest long-term update",
        "Six months in, battery life has degraded maybe ten percent. Still enough for \
         a workday. The hinge on the case developed a squeak but the warranty covered it.",
    );

    // The near-duplicate shill for a different product: no battery terms.
    let shill_copy = push(
        "rev-spon-778",
        "Best purchase ever!!",
        "Amazing blender, totally life changing! Use my promo code BLEND20 for a coupon \
         at checkout. As an influencer I test everything and this brand sent me their \
         flagship for an honest unboxing. Follow my channel for giveaway news. The \
         motor beats every competitor, trust me.",
    );

    // Background reviews on other aspects/products.
    push(
        "rev-007",
        "Noise cancelling comparison",
        "I compared noise cancelling across three brands on the subway. These were the \
         quietest by a margin, though wind noise leaks on the street.",
    );
    push(
        "rev-008",
        "Comfort for small ears",
        "The included foam tips finally fit my ears. No soreness after podcasts all \
         afternoon. The stems are shorter than they look in photos.",
    );
    push(
        "rev-009",
        "Mediocre microphone",
        "Call quality disappoints in any wind. Friends said I sounded underwater at the \
         park. Fine indoors, but not for meetings on the go.",
    );
    push(
        "rev-010",
        "Great app support",
        "The companion app gets monthly updates. Custom equaliser profiles sync across \
         devices and the find-my-earbud chirp saved me twice.",
    );
    push(
        "rev-011",
        "Case scratches easily",
        "The glossy case scratches if you keep keys in the same pocket. A cheap cover \
         fixed it. Everything else feels premium.",
    );
    push(
        "rev-012",
        "Return process was smooth",
        "My left bud crackled out of the box. The return process took four days door \
         to door and the replacement pair has been flawless.",
    );

    ReviewsCorpus {
        docs,
        shill,
        shill_copy,
        query: "battery life",
        k: 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{search_top_k, Bm25Params, DocId, InvertedIndex};
    use credence_text::Analyzer;

    fn ranked() -> (InvertedIndex, Vec<DocId>, ReviewsCorpus) {
        let demo = reviews_demo_corpus();
        let idx = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
        let q = idx.analyze_query(demo.query);
        let hits = search_top_k(&idx, Bm25Params::default(), &q, idx.num_docs());
        (idx, hits.iter().map(|h| h.doc).collect(), demo)
    }

    #[test]
    fn shill_review_is_ranked_for_the_query() {
        let (_, order, demo) = ranked();
        let pos = order
            .iter()
            .position(|&d| d == DocId(demo.shill as u32))
            .expect("shill review retrieved");
        assert!(pos < demo.k, "shill in top-{}: position {pos}", demo.k);
    }

    #[test]
    fn giveaway_terms_exclusive_to_the_shill_in_top_k() {
        let (idx, order, demo) = ranked();
        let english = Analyzer::english();
        for raw in ["promo", "coupon", "influencer", "giveaway"] {
            let term = english.analyze_term(raw).unwrap();
            let tid = idx
                .vocabulary()
                .id(&term)
                .unwrap_or_else(|| panic!("{term} must be in vocabulary"));
            for &d in order.iter().take(demo.k) {
                if d == DocId(demo.shill as u32) {
                    assert!(idx.term_freq(d, tid) > 0);
                } else {
                    assert_eq!(idx.term_freq(d, tid), 0, "{term} leaked into {d}");
                }
            }
        }
    }

    #[test]
    fn shill_copy_is_not_relevant() {
        // The copy shares the word "life" ("life changing"), so it may be
        // retrieved — but never inside the top-k.
        let (_, order, demo) = ranked();
        match order
            .iter()
            .position(|&d| d == DocId(demo.shill_copy as u32))
        {
            None => {}
            Some(pos) => assert!(pos >= demo.k, "copy at position {pos}"),
        }
    }

    #[test]
    fn there_is_a_rank_k_plus_1_document() {
        let (_, order, demo) = ranked();
        assert!(order.len() > demo.k, "builder needs a revealed document");
    }

    #[test]
    fn copies_share_the_shill_template_vocabulary() {
        let demo = reviews_demo_corpus();
        let english = Analyzer::english();
        let a: std::collections::HashSet<String> = english
            .analyze(&demo.docs[demo.shill].body)
            .into_iter()
            .collect();
        let b: std::collections::HashSet<String> = english
            .analyze(&demo.docs[demo.shill_copy].body)
            .into_iter()
            .collect();
        let overlap = a.intersection(&b).count() as f64;
        assert!(overlap / b.len() as f64 > 0.6, "template overlap too low");
        assert!(!b.contains("batteri"), "copy must lack the query terms");
    }
}
