//! Zero-dependency service observability.
//!
//! A [`Metrics`] registry of atomic counters and one latency histogram,
//! shared by every connection thread and rendered on demand in the
//! Prometheus text exposition format at `GET /metrics`. Everything is
//! lock-free: counters are `AtomicU64`, the histogram is a fixed array of
//! buckets, and rendering reads a consistent-enough snapshot (Prometheus
//! scrapes tolerate counters advancing between lines).
//!
//! Metric families:
//!
//! * `credence_requests_total{endpoint,status}` — requests served, by route
//!   table endpoint label and HTTP status code;
//! * `credence_request_duration_seconds` — histogram over all requests,
//!   plus `credence_request_duration_quantile_seconds{quantile}` gauges
//!   with bucket-resolution p50/p95/p99 estimates;
//! * `credence_searches_total{status}` — counterfactual searches by
//!   [`SearchStatus`](credence_core::SearchStatus) name;
//! * `credence_deadline_hits_total` — searches stopped by the wall-clock
//!   deadline (a convenience alias of `searches_total{status="deadline"}`);
//! * `credence_candidate_evals_total` and
//!   `credence_search_seconds_total` — candidate evaluations committed and
//!   wall-clock spent inside explainer searches; their rate ratio is the
//!   evaluation throughput;
//! * `credence_retrieval_docs_scored_total`,
//!   `credence_retrieval_docs_pruned_total`,
//!   `credence_retrieval_shards_used_total` — the pruned top-k engine's
//!   work counters (pruned/scored is the fraction of postings MaxScore
//!   skipped);
//! * `credence_ranking_cache_hits_total` /
//!   `credence_ranking_cache_misses_total` — the engine's query→ranking
//!   LRU cache effectiveness;
//! * `credence_jobs_queue_depth` (gauge), `credence_jobs_total{state}`,
//!   `credence_jobs_rejected_total`, and the
//!   `credence_jobs_queue_wait_seconds` / `credence_jobs_execution_seconds`
//!   histograms — the async explanation job subsystem (see
//!   [`jobs`](crate::jobs)): how deep the submission queue is, how jobs
//!   progress through their lifecycle, and how admission latency compares
//!   to execution cost.
//!
//! The retrieval family lives in the engine's own atomics (retrieval
//! happens outside the HTTP layer); [`Metrics::record_retrieval`] copies
//! the latest [`RetrievalStats`] snapshot in before each render.

use std::sync::atomic::{AtomicU64, Ordering};

use credence_core::RetrievalStats;

/// HTTP status codes tracked with their own counter; anything else lands in
/// the trailing `"other"` bucket.
const STATUSES: [u16; 13] = [
    200, 201, 202, 400, 404, 405, 409, 410, 413, 422, 429, 500, 503,
];

/// Histogram bucket upper bounds, in microseconds (rendered as seconds).
const BUCKETS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000,
];

/// Search outcome labels, in [`SearchStatus`](credence_core::SearchStatus)
/// order.
const SEARCH_STATUSES: [&str; 4] = ["complete", "exhausted", "deadline", "cancelled"];

/// Job lifecycle labels, in `JobState` order. Counters count *entries into*
/// each state, so one job increments several labels as it progresses.
const JOB_STATES: [&str; 8] = [
    "queued",
    "running",
    "complete",
    "exhausted",
    "deadline",
    "cancelled",
    "failed",
    "expired",
];

/// A fixed-bucket latency histogram (microsecond samples).
struct Histogram {
    /// Non-cumulative per-bucket counts; the last entry is `+Inf`.
    buckets: [AtomicU64; BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    fn observe(&self, us: u64) {
        let idx = BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ([u64; BUCKETS_US.len() + 1], u64) {
        (
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.sum_us.load(Ordering::Relaxed),
        )
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q` of the total, in seconds.
    fn quantile(counts: &[u64], q: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let bound = BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKETS_US[BUCKETS_US.len() - 1]);
                return bound as f64 / 1e6;
            }
        }
        BUCKETS_US[BUCKETS_US.len() - 1] as f64 / 1e6
    }
}

/// Render one histogram family (buckets, sum, count) onto `out`, returning
/// the per-bucket snapshot for quantile estimation.
fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    histogram: &Histogram,
) -> [u64; BUCKETS_US.len() + 1] {
    let (counts, sum_us) = histogram.snapshot();
    let total: u64 = counts.iter().sum();
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        let le = match BUCKETS_US.get(i) {
            Some(&bound) => format!("{}", bound as f64 / 1e6),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", sum_us as f64 / 1e6));
    out.push_str(&format!("{name}_count {total}\n"));
    counts
}

/// The service-wide metrics registry. Construct once per [`AppState`]
/// (crate::AppState) with the route table's endpoint labels.
pub struct Metrics {
    endpoints: &'static [&'static str],
    /// `requests[endpoint][status_bucket]`; the extra status bucket is
    /// `"other"`.
    requests: Vec<[AtomicU64; STATUSES.len() + 1]>,
    latency: Histogram,
    searches: [AtomicU64; SEARCH_STATUSES.len()],
    deadline_hits: AtomicU64,
    evals_total: AtomicU64,
    search_us_total: AtomicU64,
    retrieval_docs_scored: AtomicU64,
    retrieval_docs_pruned: AtomicU64,
    retrieval_shards_used: AtomicU64,
    retrieval_blocks_decoded: AtomicU64,
    retrieval_blocks_skipped: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_size: AtomicU64,
    cache_evictions: AtomicU64,
    jobs_queue_depth: AtomicU64,
    jobs_states: [AtomicU64; JOB_STATES.len()],
    jobs_rejected: AtomicU64,
    jobs_queue_wait: Histogram,
    jobs_execution: Histogram,
    next_id: AtomicU64,
}

impl Metrics {
    /// A registry tracking the given endpoint labels (the last label should
    /// be a catch-all such as `"other"`; unknown labels fall back to it).
    pub fn new(endpoints: &'static [&'static str]) -> Self {
        assert!(!endpoints.is_empty(), "at least one endpoint label");
        Self {
            endpoints,
            requests: (0..endpoints.len())
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            latency: Histogram::new(),
            searches: std::array::from_fn(|_| AtomicU64::new(0)),
            deadline_hits: AtomicU64::new(0),
            evals_total: AtomicU64::new(0),
            search_us_total: AtomicU64::new(0),
            retrieval_docs_scored: AtomicU64::new(0),
            retrieval_docs_pruned: AtomicU64::new(0),
            retrieval_shards_used: AtomicU64::new(0),
            retrieval_blocks_decoded: AtomicU64::new(0),
            retrieval_blocks_skipped: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_size: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            jobs_queue_depth: AtomicU64::new(0),
            jobs_states: std::array::from_fn(|_| AtomicU64::new(0)),
            jobs_rejected: AtomicU64::new(0),
            jobs_queue_wait: Histogram::new(),
            jobs_execution: Histogram::new(),
            next_id: AtomicU64::new(1),
        }
    }

    /// A fresh id for the next request (1-based, monotonically increasing).
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one served request.
    pub fn record_request(&self, endpoint: &str, status: u16, duration_us: u64) {
        let e = self
            .endpoints
            .iter()
            .position(|&n| n == endpoint)
            .unwrap_or(self.endpoints.len() - 1);
        let s = STATUSES
            .iter()
            .position(|&c| c == status)
            .unwrap_or(STATUSES.len());
        self.requests[e][s].fetch_add(1, Ordering::Relaxed);
        self.latency.observe(duration_us);
    }

    /// Record one counterfactual search: its outcome label (a
    /// [`SearchStatus`](credence_core::SearchStatus) name), candidates
    /// committed, and wall-clock spent.
    pub fn record_search(&self, status: &str, candidates_evaluated: u64, duration_us: u64) {
        if let Some(i) = SEARCH_STATUSES.iter().position(|&n| n == status) {
            self.searches[i].fetch_add(1, Ordering::Relaxed);
        }
        if status == "deadline" {
            self.deadline_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.evals_total
            .fetch_add(candidates_evaluated, Ordering::Relaxed);
        self.search_us_total
            .fetch_add(duration_us, Ordering::Relaxed);
    }

    /// Total wall-clock deadline hits (for tests and diagnostics).
    pub fn deadline_hits(&self) -> u64 {
        self.deadline_hits.load(Ordering::Relaxed)
    }

    /// Count one job entering the named lifecycle state.
    pub fn record_job_state(&self, state: &str) {
        if let Some(i) = JOB_STATES.iter().position(|&n| n == state) {
            self.jobs_states[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one job submission rejected at admission (full queue or
    /// shutdown).
    pub fn record_job_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record how long a job waited in the queue before a worker claimed
    /// it.
    pub fn record_job_queue_wait(&self, us: u64) {
        self.jobs_queue_wait.observe(us);
    }

    /// Record how long a job's search ran on its worker.
    pub fn record_job_execution(&self, us: u64) {
        self.jobs_execution.observe(us);
    }

    /// Publish the current submission-queue length.
    pub fn set_jobs_queue_depth(&self, depth: u64) {
        self.jobs_queue_depth.store(depth, Ordering::Relaxed);
    }

    /// How many jobs have entered the named state (for tests and
    /// diagnostics).
    pub fn jobs_in_state(&self, state: &str) -> u64 {
        JOB_STATES
            .iter()
            .position(|&n| n == state)
            .map(|i| self.jobs_states[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Copy the engine's cumulative retrieval counters into the registry.
    /// The values are absolute totals, so this *stores* rather than adds —
    /// calling it repeatedly with the same snapshot is idempotent.
    pub fn record_retrieval(&self, stats: RetrievalStats) {
        self.retrieval_docs_scored
            .store(stats.docs_scored, Ordering::Relaxed);
        self.retrieval_docs_pruned
            .store(stats.docs_pruned, Ordering::Relaxed);
        self.retrieval_shards_used
            .store(stats.shards_used, Ordering::Relaxed);
        self.retrieval_blocks_decoded
            .store(stats.blocks_decoded, Ordering::Relaxed);
        self.retrieval_blocks_skipped
            .store(stats.blocks_skipped, Ordering::Relaxed);
        self.cache_hits.store(stats.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .store(stats.cache_misses, Ordering::Relaxed);
        self.cache_size.store(stats.cache_size, Ordering::Relaxed);
        self.cache_evictions
            .store(stats.cache_evictions, Ordering::Relaxed);
    }

    /// Render the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP credence_requests_total Requests served, by endpoint and HTTP status.\n",
        );
        out.push_str("# TYPE credence_requests_total counter\n");
        for (e, row) in self.requests.iter().enumerate() {
            for (s, counter) in row.iter().enumerate() {
                let count = counter.load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let status = STATUSES
                    .get(s)
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "other".to_string());
                out.push_str(&format!(
                    "credence_requests_total{{endpoint=\"{}\",status=\"{}\"}} {}\n",
                    self.endpoints[e], status, count
                ));
            }
        }

        let counts = render_histogram(
            &mut out,
            "credence_request_duration_seconds",
            "Request latency.",
            &self.latency,
        );

        out.push_str(
            "# HELP credence_request_duration_quantile_seconds Bucket-resolution latency quantiles.\n",
        );
        out.push_str("# TYPE credence_request_duration_quantile_seconds gauge\n");
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            out.push_str(&format!(
                "credence_request_duration_quantile_seconds{{quantile=\"{label}\"}} {}\n",
                Histogram::quantile(&counts, q)
            ));
        }

        out.push_str("# HELP credence_jobs_queue_depth Explanation jobs waiting for a worker.\n");
        out.push_str("# TYPE credence_jobs_queue_depth gauge\n");
        out.push_str(&format!(
            "credence_jobs_queue_depth {}\n",
            self.jobs_queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP credence_jobs_total Explanation jobs entering each lifecycle state.\n",
        );
        out.push_str("# TYPE credence_jobs_total counter\n");
        for (i, name) in JOB_STATES.iter().enumerate() {
            out.push_str(&format!(
                "credence_jobs_total{{state=\"{name}\"}} {}\n",
                self.jobs_states[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP credence_jobs_rejected_total Job submissions rejected at admission.\n",
        );
        out.push_str("# TYPE credence_jobs_rejected_total counter\n");
        out.push_str(&format!(
            "credence_jobs_rejected_total {}\n",
            self.jobs_rejected.load(Ordering::Relaxed)
        ));

        render_histogram(
            &mut out,
            "credence_jobs_queue_wait_seconds",
            "Time jobs spent queued before a worker claimed them.",
            &self.jobs_queue_wait,
        );
        render_histogram(
            &mut out,
            "credence_jobs_execution_seconds",
            "Time job searches spent executing on a worker.",
            &self.jobs_execution,
        );

        out.push_str("# HELP credence_searches_total Counterfactual searches, by outcome.\n");
        out.push_str("# TYPE credence_searches_total counter\n");
        for (i, name) in SEARCH_STATUSES.iter().enumerate() {
            out.push_str(&format!(
                "credence_searches_total{{status=\"{name}\"}} {}\n",
                self.searches[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP credence_deadline_hits_total Searches stopped by the wall-clock deadline.\n",
        );
        out.push_str("# TYPE credence_deadline_hits_total counter\n");
        out.push_str(&format!(
            "credence_deadline_hits_total {}\n",
            self.deadline_hits.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP credence_candidate_evals_total Candidate evaluations committed by explainer searches.\n");
        out.push_str("# TYPE credence_candidate_evals_total counter\n");
        out.push_str(&format!(
            "credence_candidate_evals_total {}\n",
            self.evals_total.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP credence_search_seconds_total Wall-clock seconds spent inside explainer searches.\n");
        out.push_str("# TYPE credence_search_seconds_total counter\n");
        out.push_str(&format!(
            "credence_search_seconds_total {}\n",
            self.search_us_total.load(Ordering::Relaxed) as f64 / 1e6
        ));

        for (name, kind, help, counter) in [
            (
                "credence_retrieval_docs_scored_total",
                "counter",
                "Documents scored by the top-k retrieval engine.",
                &self.retrieval_docs_scored,
            ),
            (
                "credence_retrieval_docs_pruned_total",
                "counter",
                "Posting entries skipped by MaxScore pruning.",
                &self.retrieval_docs_pruned,
            ),
            (
                "credence_retrieval_shards_used_total",
                "counter",
                "Shards spawned by parallel sharded retrieval.",
                &self.retrieval_shards_used,
            ),
            (
                "credence_retrieval_blocks_decoded_total",
                "counter",
                "Posting blocks decoded by block-max retrieval.",
                &self.retrieval_blocks_decoded,
            ),
            (
                "credence_retrieval_blocks_skipped_total",
                "counter",
                "Posting blocks skipped undecoded via block-max bounds.",
                &self.retrieval_blocks_skipped,
            ),
            (
                "credence_ranking_cache_hits_total",
                "counter",
                "Query ranking-cache lookups served from cache.",
                &self.cache_hits,
            ),
            (
                "credence_ranking_cache_misses_total",
                "counter",
                "Query ranking-cache lookups that ranked the corpus.",
                &self.cache_misses,
            ),
            (
                "credence_ranking_cache_size",
                "gauge",
                "Rankings currently resident in live ranking caches.",
                &self.cache_size,
            ),
            (
                "credence_ranking_cache_evictions_total",
                "counter",
                "Rankings evicted from the cache to make room.",
                &self.cache_evictions,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            out.push_str(&format!("{name} {}\n", counter.load(Ordering::Relaxed)));
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: &[&str] = &["rank", "sentence_removal", "other"];

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let m = Metrics::new(LABELS);
        let a = m.next_request_id();
        let b = m.next_request_id();
        assert!(b > a);
    }

    #[test]
    fn request_counters_accumulate_by_endpoint_and_status() {
        let m = Metrics::new(LABELS);
        m.record_request("rank", 200, 1_000);
        m.record_request("rank", 200, 2_000);
        m.record_request("rank", 404, 50);
        m.record_request("unknown-endpoint", 275, 10); // both fall back
        let text = m.render();
        assert!(text.contains("credence_requests_total{endpoint=\"rank\",status=\"200\"} 2"));
        assert!(text.contains("credence_requests_total{endpoint=\"rank\",status=\"404\"} 1"));
        assert!(text.contains("credence_requests_total{endpoint=\"other\",status=\"other\"} 1"));
        assert!(text.contains("credence_request_duration_seconds_count 4"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new(LABELS);
        m.record_request("rank", 200, 90); // <= 100us bucket
        m.record_request("rank", 200, 90_000); // <= 100ms bucket
        let text = m.render();
        assert!(text.contains("credence_request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("credence_request_duration_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("credence_request_duration_seconds_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let m = Metrics::new(LABELS);
        for _ in 0..99 {
            m.record_request("rank", 200, 90); // 0.0001s bucket
        }
        m.record_request("rank", 200, 2_000_000); // 2.5s bucket
        let text = m.render();
        assert!(
            text.contains("credence_request_duration_quantile_seconds{quantile=\"0.5\"} 0.0001")
        );
        assert!(
            text.contains("credence_request_duration_quantile_seconds{quantile=\"0.99\"} 0.0001")
        );
        let m2 = Metrics::new(LABELS);
        for _ in 0..10 {
            m2.record_request("rank", 200, 2_000_000);
        }
        let text = m2.render();
        assert!(text.contains("quantile=\"0.5\"} 2.5"));
    }

    #[test]
    fn search_metrics_count_outcomes_and_evals() {
        let m = Metrics::new(LABELS);
        m.record_search("complete", 120, 3_000);
        m.record_search("deadline", 40, 5_000);
        m.record_search("deadline", 1, 5_000);
        assert_eq!(m.deadline_hits(), 2);
        let text = m.render();
        assert!(text.contains("credence_searches_total{status=\"complete\"} 1"));
        assert!(text.contains("credence_searches_total{status=\"deadline\"} 2"));
        assert!(text.contains("credence_deadline_hits_total 2"));
        assert!(text.contains("credence_candidate_evals_total 161"));
        assert!(text.contains("credence_search_seconds_total 0.013"));
    }

    #[test]
    fn empty_registry_renders_zeroes() {
        let m = Metrics::new(LABELS);
        let text = m.render();
        assert!(text.contains("credence_request_duration_seconds_count 0"));
        assert!(text.contains("credence_deadline_hits_total 0"));
        assert!(text.contains("quantile=\"0.5\"} 0\n"));
        assert!(text.contains("credence_retrieval_docs_scored_total 0"));
        assert!(text.contains("credence_ranking_cache_hits_total 0"));
    }

    #[test]
    fn job_metrics_render_every_family() {
        let m = Metrics::new(LABELS);
        m.record_job_state("queued");
        m.record_job_state("running");
        m.record_job_state("complete");
        m.record_job_state("nonsense"); // unknown labels are ignored
        m.record_job_rejected();
        m.record_job_queue_wait(90);
        m.record_job_execution(90_000);
        m.set_jobs_queue_depth(3);
        assert_eq!(m.jobs_in_state("queued"), 1);
        assert_eq!(m.jobs_in_state("complete"), 1);
        assert_eq!(m.jobs_in_state("nonsense"), 0);
        let text = m.render();
        assert!(text.contains("credence_jobs_queue_depth 3"));
        assert!(text.contains("credence_jobs_total{state=\"queued\"} 1"));
        assert!(text.contains("credence_jobs_total{state=\"running\"} 1"));
        assert!(text.contains("credence_jobs_total{state=\"expired\"} 0"));
        assert!(text.contains("credence_jobs_rejected_total 1"));
        assert!(text.contains("credence_jobs_queue_wait_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("credence_jobs_queue_wait_seconds_count 1"));
        assert!(text.contains("credence_jobs_execution_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("credence_jobs_execution_seconds_count 1"));
    }

    #[test]
    fn job_status_codes_get_their_own_request_buckets() {
        let m = Metrics::new(LABELS);
        m.record_request("rank", 202, 10);
        m.record_request("rank", 410, 10);
        m.record_request("rank", 429, 10);
        m.record_request("rank", 503, 10);
        let text = m.render();
        for status in ["202", "410", "429", "503"] {
            assert!(
                text.contains(&format!(
                    "credence_requests_total{{endpoint=\"rank\",status=\"{status}\"}} 1"
                )),
                "missing status {status}"
            );
        }
    }

    #[test]
    fn retrieval_snapshot_stores_absolute_totals() {
        let m = Metrics::new(LABELS);
        let stats = RetrievalStats {
            docs_scored: 100,
            docs_pruned: 40,
            shards_used: 8,
            blocks_decoded: 17,
            blocks_skipped: 23,
            cache_hits: 5,
            cache_misses: 2,
            cache_size: 2,
            cache_evictions: 1,
        };
        m.record_retrieval(stats);
        m.record_retrieval(stats); // idempotent: stores, not adds
        let text = m.render();
        assert!(text.contains("credence_retrieval_docs_scored_total 100"));
        assert!(text.contains("credence_retrieval_docs_pruned_total 40"));
        assert!(text.contains("credence_retrieval_shards_used_total 8"));
        assert!(text.contains("credence_retrieval_blocks_decoded_total 17"));
        assert!(text.contains("credence_retrieval_blocks_skipped_total 23"));
        assert!(text.contains("credence_ranking_cache_hits_total 5"));
        assert!(text.contains("credence_ranking_cache_misses_total 2"));
        assert!(text.contains("credence_ranking_cache_size 2"));
        assert!(text.contains("credence_ranking_cache_evictions_total 1"));
    }

    #[test]
    fn all_ranking_cache_families_render_with_declared_types() {
        let m = Metrics::new(LABELS);
        let text = m.render();
        for (name, kind) in [
            ("credence_ranking_cache_hits_total", "counter"),
            ("credence_ranking_cache_misses_total", "counter"),
            ("credence_ranking_cache_size", "gauge"),
            ("credence_ranking_cache_evictions_total", "counter"),
        ] {
            assert!(text.contains(&format!("# TYPE {name} {kind}")), "{name}");
            assert!(text.contains(&format!("\n{name} 0\n")), "{name} value line");
        }
    }
}
