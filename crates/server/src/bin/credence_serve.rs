//! The `credence-serve` binary: serve the demo corpus (or a JSONL/TSV corpus)
//! over the CREDENCE REST API — or, with `--router`, a scatter-gather
//! cluster router fanning requests over worker processes.
//!
//! ```text
//! credence-serve [--addr 127.0.0.1:8091] [--corpus path.{jsonl,tsv}]
//! credence-serve --router --workers 127.0.0.1:8092,127.0.0.1:8093 \
//!                [--partitions N] [--fanout-deadline-ms MS]
//! ```

use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;

use credence_core::{EngineConfig, EvalOptions, SearchStrategy, TopKOptions};
use credence_corpus::{covid_demo_corpus, load_jsonl, load_tsv};
use credence_server::server::ServerOptions;
use credence_server::service::RankerChoice;
use credence_server::{
    AppState, ExplainCacheConfig, JobsConfig, RouterConfig, RouterState, Server,
};

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8091".to_string();
    let mut corpus_path: Option<String> = None;
    let mut extra_corpora: Vec<(String, String)> = Vec::new();
    let mut ranker = RankerChoice::Bm25;
    let mut eval = EvalOptions::default();
    let mut retrieval = TopKOptions::default();
    let mut jobs = JobsConfig::default();
    let mut cache = ExplainCacheConfig::default();
    let mut options = ServerOptions::default();
    let mut router = false;
    let mut workers: Vec<SocketAddr> = Vec::new();
    let mut router_config = RouterConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr requires a value"),
            },
            "--router" => router = true,
            "--workers" => match args.next() {
                Some(list) => {
                    for part in list.split(',').filter(|p| !p.trim().is_empty()) {
                        match part.trim().parse::<SocketAddr>() {
                            Ok(a) => workers.push(a),
                            Err(_) => {
                                return usage(&format!("--workers: invalid address {part:?}"))
                            }
                        }
                    }
                }
                None => return usage("--workers requires a comma-separated address list"),
            },
            "--partitions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(p) => router_config.partitions = p,
                None => return usage("--partitions requires an integer (0 = one per worker)"),
            },
            "--fanout-deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms >= 1 => router_config.fanout_deadline_ms = ms,
                _ => return usage("--fanout-deadline-ms requires an integer >= 1"),
            },
            "--corpus" => match args.next() {
                Some(p) => corpus_path = Some(p),
                None => return usage("--corpus requires a value"),
            },
            "--extra-corpus" => match args.next() {
                Some(spec) => match spec.split_once('=') {
                    Some((name, file)) if !name.is_empty() && !file.is_empty() => {
                        extra_corpora.push((name.to_string(), file.to_string()));
                    }
                    _ => return usage("--extra-corpus requires NAME=FILE.jsonl|FILE.tsv"),
                },
                None => return usage("--extra-corpus requires NAME=FILE.jsonl|FILE.tsv"),
            },
            "--ranker" => match args.next().as_deref().and_then(RankerChoice::parse) {
                Some(r) => ranker = r,
                None => return usage("--ranker must be bm25 | ql | ql-jm | rm3 | neural"),
            },
            "--eval-threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => eval.threads = t,
                None => return usage("--eval-threads requires an integer (0 = auto)"),
            },
            "--eval-parallel-threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => eval.parallel_threshold = t,
                None => return usage("--eval-parallel-threshold requires an integer"),
            },
            "--eval-exact" => eval.force_exact = true,
            "--search-strategy" => match args.next().as_deref().and_then(SearchStrategy::parse) {
                Some(s) => retrieval.strategy = s,
                None => {
                    return usage(
                        "--search-strategy must be auto | exhaustive | pruned | bmw | sharded",
                    )
                }
            },
            "--search-shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => retrieval.shards = s,
                None => return usage("--search-shards requires an integer (0 = auto)"),
            },
            "--search-dense-postings" => match args.next().and_then(|v| v.parse().ok()) {
                Some(d) => retrieval.dense_postings = d,
                None => return usage("--search-dense-postings requires an integer"),
            },
            "--job-workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) if w >= 1 => jobs.workers = w,
                _ => return usage("--job-workers requires an integer >= 1"),
            },
            "--job-queue-depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(d) if d >= 1 => jobs.queue_depth = d,
                _ => return usage("--job-queue-depth requires an integer >= 1"),
            },
            "--job-result-ttl-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ttl) => jobs.result_ttl_ms = ttl,
                None => return usage("--job-result-ttl-ms requires an integer"),
            },
            "--explain-cache-entries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(entries) => cache.entries = entries,
                None => return usage("--explain-cache-entries requires an integer (0 = disable)"),
            },
            "--max-connections" => match args.next().and_then(|v| v.parse().ok()) {
                Some(m) if m >= 1 => options.max_connections = m,
                _ => return usage("--max-connections requires an integer >= 1"),
            },
            "--help" | "-h" => {
                println!(
                    "credence-serve — CREDENCE REST API\n\n\
                     USAGE: credence-serve [--addr HOST:PORT] [--corpus FILE.jsonl|FILE.tsv]\n\
                     \x20                     [--extra-corpus NAME=FILE ...]\n\
                     \x20                     [--router --workers A:P,B:P [--partitions N]\n\
                     \x20                      [--fanout-deadline-ms MS]]\n\
                     \x20                     [--ranker bm25|ql|ql-jm|rm3|neural]\n\
                     \x20                     [--eval-threads N] [--eval-parallel-threshold N]\n\
                     \x20                     [--eval-exact]\n\
                     \x20                     [--search-strategy auto|exhaustive|pruned|bmw|sharded]\n\
                     \x20                     [--search-shards N] [--search-dense-postings N]\n\
                     \x20                     [--job-workers N] [--job-queue-depth N]\n\
                     \x20                     [--job-result-ttl-ms MS] [--max-connections N]\n\
                     \x20                     [--explain-cache-entries N]\n\n\
                     --extra-corpus: register an additional named corpus (repeatable);\n\
                     \x20  serve it via the 'corpus' request field and manage it live\n\
                     \x20  through PUT/DELETE /api/v1/corpora/NAME.\n\
                     --eval-threads: worker threads for counterfactual candidate\n\
                     \x20  evaluation (0 = one per CPU, 1 = serial).\n\
                     --eval-parallel-threshold: smallest candidate batch fanned out\n\
                     \x20  to threads.\n\
                     --eval-exact: disable the incremental scorers (reference path).\n\
                     --search-strategy: top-k retrieval path (default auto: MaxScore\n\
                     \x20  pruning, or Block-Max-WAND / sharded BMW for dense queries).\n\
                     --search-shards: shard count for the sharded path (0 = one per CPU).\n\
                     --search-dense-postings: candidate-postings volume at which a\n\
                     \x20  query counts as dense.\n\
                     --job-workers: worker threads executing async explanation jobs\n\
                     \x20  (POST /api/v1/jobs; default 2).\n\
                     --job-queue-depth: waiting jobs accepted before submissions are\n\
                     \x20  rejected with 429 (default 64).\n\
                     --job-result-ttl-ms: how long finished job results stay\n\
                     \x20  retrievable (default 300000).\n\
                     --max-connections: concurrent connection threads before new\n\
                     \x20  sockets are refused with 503 (default 1024).\n\
                     --explain-cache-entries: responses held by the cross-request\n\
                     \x20  explanation cache (default 512; 0 disables caching and\n\
                     \x20  single-flight coalescing). Per-request opt-out via the\n\
                     \x20  explain_cache_bypass body field.\n\
                     --router: run as a scatter-gather router over --workers instead\n\
                     \x20  of serving a corpus. Workers are plain credence-serve\n\
                     \x20  processes over the same corpus; /rank fans out one leg per\n\
                     \x20  doc-hash partition and merges bit-identically to single-node.\n\
                     --workers: comma-separated worker addresses (router mode).\n\
                     --partitions: doc-hash partitions per fanout (0 = one per worker).\n\
                     --fanout-deadline-ms: per-leg worker deadline (default 2000);\n\
                     \x20  requests carrying deadline_ms get that budget plus this grace.\n\n\
                     Without --corpus, serves the built-in COVID-19 Articles demo corpus."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    if router {
        if workers.is_empty() {
            return usage("--router requires --workers with at least one address");
        }
        let state = RouterState::leak(workers, router_config);
        let server = match Server::bind_with(addr.as_str(), state, options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "credence-serve router listening on http://{addr} ({} partitions)",
            state.partitions()
        );
        if let Err(e) = server.run() {
            eprintln!("server error: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let docs = match &corpus_path {
        None => covid_demo_corpus().docs,
        Some(p) => match load_corpus_file(p) {
            Ok(docs) => docs,
            Err(e) => {
                eprintln!("failed to load corpus {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!("indexing {} documents and training doc2vec...", docs.len());
    let config = EngineConfig {
        eval,
        retrieval,
        ..EngineConfig::default()
    };
    let state = AppState::leak_full(docs, config, ranker, jobs, cache);
    for (name, file) in &extra_corpora {
        if name == "default" {
            eprintln!("--extra-corpus: the name 'default' is reserved for --corpus");
            return ExitCode::FAILURE;
        }
        match load_corpus_file(file) {
            Ok(docs) => {
                eprintln!(
                    "indexing extra corpus '{name}' ({} documents)...",
                    docs.len()
                );
                state.register_corpus(name, docs);
            }
            Err(e) => {
                eprintln!("failed to load extra corpus {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    state.enable_request_logging();
    let server = match Server::bind_with(addr.as_str(), state, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("credence-serve listening on http://{addr}");
    eprintln!("try: curl -s http://{addr}/api/v1/health");
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Load a `.jsonl` or `.tsv` corpus file (shared by `--corpus` and each
/// `--extra-corpus NAME=FILE`).
fn load_corpus_file(p: &str) -> Result<Vec<credence_index::Document>, credence_corpus::LoadError> {
    let path = Path::new(p);
    if p.ends_with(".tsv") {
        load_tsv(path)
    } else {
        load_jsonl(path)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nrun with --help for usage");
    ExitCode::FAILURE
}
