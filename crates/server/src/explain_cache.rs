//! Content-addressed explanation cache with single-flight coalescing.
//!
//! The four counterfactual explainers are expensive exactly where traffic
//! is most repetitive: the same (query, document) explanation requests
//! recur constantly, and every one used to re-run the full candidate
//! search. This module shares that work across requests:
//!
//! * **Content addressing.** Keys are built by the service layer from the
//!   *parsed* request — `(endpoint, corpus, generation, canonicalized
//!   fields)` — so semantically identical requests hash equal regardless
//!   of field order or spelled-out defaults, and a corpus publish bumps
//!   the generation and thereby invalidates without any sweeping.
//! * **Single flight.** When N identical requests arrive concurrently,
//!   one leader computes and N−1 waiters block on its in-flight slot and
//!   receive a clone of the same payload. A waiter's own deadline bounds
//!   the wait: if it expires first, the waiter falls through to its own
//!   compute, which the expired [`credence_core::Budget`] immediately
//!   resolves to the canonical `status: "deadline"` partial — a coalesced
//!   request never blocks past its budget.
//! * **Byte parity.** Only *deterministic* payloads are stored or handed
//!   to waiters: HTTP 200 with a body `status` of `complete` or
//!   `exhausted`. Deadline and cancelled partials depend on wall-clock
//!   time, which is deliberately excluded from the key, so they are
//!   computed per request and never shared. A cached response is therefore
//!   bit-identical to what an uncached engine would produce.
//!
//! Storage reuses the O(1) LRU idiom from the engine's ranking cache
//! (`crates/core/src/engine.rs`): a hash map into a slab of nodes threaded
//! on an intrusive recency list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::http::Response;

/// Sentinel for "no node" in the LRU's intrusive links.
const NIL: usize = usize::MAX;

/// Configuration for the server's explanation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainCacheConfig {
    /// Maximum number of cached responses; `0` disables caching and
    /// coalescing entirely.
    pub entries: usize,
}

impl Default for ExplainCacheConfig {
    fn default() -> Self {
        Self { entries: 512 }
    }
}

struct CacheNode {
    key: String,
    response: Response,
    prev: usize,
    next: usize,
}

/// The mutable interior: map from canonical key to slab slot plus a
/// doubly-linked recency list. `get` and `insert` are both O(1).
#[derive(Default)]
struct CacheState {
    map: HashMap<String, usize>,
    nodes: Vec<CacheNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl CacheState {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            ..Self::default()
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<Response> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
        Some(self.nodes[i].response.clone())
    }

    /// Inserts `key`; returns `true` when an older entry was evicted.
    fn insert(&mut self, key: &str, response: Response, capacity: usize) -> bool {
        if self.map.contains_key(key) {
            return false; // a racing thread inserted first; keep its entry
        }
        let mut evicted_one = false;
        if self.map.len() >= capacity {
            let lru = self.tail;
            self.detach(lru);
            let evicted = std::mem::take(&mut self.nodes[lru].key);
            self.map.remove(&evicted);
            self.free.push(lru);
            evicted_one = true;
        }
        let node = CacheNode {
            key: key.to_string(),
            response,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key.to_string(), i);
        evicted_one
    }
}

/// A single-flight slot: the leader publishes its outcome here and wakes
/// every waiter. `Some(response)` is a shareable payload; `None` means the
/// leader's result was request-specific (deadline/cancelled partial or an
/// error) and each waiter must compute its own.
struct InFlight {
    outcome: Mutex<Option<Option<Response>>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        Self {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }
}

/// Content-addressed LRU of explanation responses with single-flight
/// coalescing of concurrent identical requests.
pub struct ExplainCache {
    capacity: usize,
    state: Mutex<CacheState>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl ExplainCache {
    /// Build a cache holding at most `config.entries` responses.
    pub fn new(config: ExplainCacheConfig) -> Self {
        Self {
            capacity: config.entries,
            state: Mutex::new(CacheState::new()),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Lookups served from the cache without recomputation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Lookups that ran the underlying search.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Requests that joined another request's in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Relaxed)
    }

    /// Entries evicted to make room for newer responses.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Relaxed)
    }

    /// Responses currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache currently holds no responses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serve `key` from the cache, join an identical in-flight request, or
    /// compute. `deadline` bounds how long a coalesced waiter may block;
    /// past it the waiter computes for itself (which an expired budget
    /// resolves immediately to the canonical deadline partial).
    pub fn get_or_compute(
        &self,
        key: &str,
        deadline: Option<Instant>,
        compute: impl FnOnce() -> Response,
    ) -> Response {
        // A budget that is already spent resolves instantly to its
        // canonical `status: "deadline"` partial; consulting the cache
        // would replace that deterministic payload with a warmth-dependent
        // one, so expired requests always compute (and are never stored —
        // partials are not deterministic payloads).
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        if self.capacity == 0 || expired {
            self.misses.fetch_add(1, Relaxed);
            return compute();
        }
        if let Some(response) = self.state.lock().expect("cache lock poisoned").get(key) {
            self.hits.fetch_add(1, Relaxed);
            return response;
        }

        // Miss: become the leader for this key, or wait on the one in
        // flight.
        let (slot, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight lock poisoned");
            match inflight.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(InFlight::new());
                    inflight.insert(key.to_string(), Arc::clone(&slot));
                    (Arc::clone(&slot), true)
                }
            }
        };

        if !leader {
            self.coalesced.fetch_add(1, Relaxed);
            if let Some(response) = self.wait_for(&slot, deadline) {
                return response;
            }
            // The leader's payload was not shareable, or our deadline
            // expired first: compute for ourselves. An expired budget makes
            // this immediate and canonical.
            self.misses.fetch_add(1, Relaxed);
            return compute();
        }

        self.misses.fetch_add(1, Relaxed);
        let response = compute();
        let shareable = is_deterministic(&response);
        {
            let mut outcome = slot.outcome.lock().expect("inflight slot poisoned");
            *outcome = Some(if shareable {
                Some(response.clone())
            } else {
                None
            });
            slot.done.notify_all();
        }
        self.inflight
            .lock()
            .expect("inflight lock poisoned")
            .remove(key);
        if shareable {
            let mut state = self.state.lock().expect("cache lock poisoned");
            if state.insert(key, response.clone(), self.capacity) {
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        response
    }

    /// Block on `slot` until the leader publishes or `deadline` passes.
    /// Returns the shared payload, or `None` when the waiter must compute
    /// for itself.
    fn wait_for(&self, slot: &InFlight, deadline: Option<Instant>) -> Option<Response> {
        let mut outcome = slot.outcome.lock().expect("inflight slot poisoned");
        loop {
            if let Some(published) = outcome.as_ref() {
                return published.clone();
            }
            match deadline {
                None => {
                    outcome = slot.done.wait(outcome).expect("inflight slot poisoned");
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _timeout) = slot
                        .done
                        .wait_timeout(outcome, d - now)
                        .expect("inflight slot poisoned");
                    outcome = guard;
                }
            }
        }
    }
}

/// Whether a response is deterministic — reproducible for any request
/// that hashes to the same canonical key — and therefore safe to store
/// and to hand to coalesced waiters. Deadline/cancelled partials depend
/// on wall-clock time (excluded from the key) and errors carry no reusable
/// work, so only completed or evaluation-capped successes qualify.
fn is_deterministic(response: &Response) -> bool {
    if response.status != 200 {
        return false;
    }
    let Ok(body) = std::str::from_utf8(&response.body) else {
        return false;
    };
    let Ok(value) = credence_json::parse(body) else {
        return false;
    };
    matches!(
        value.get("status").and_then(|s| s.as_str()),
        Some("complete") | Some("exhausted")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u64) -> Response {
        Response::json(200, format!("{{\"status\":\"complete\",\"n\":{n}}}"))
    }

    #[test]
    fn repeat_lookup_is_a_hit_with_identical_bytes() {
        let cache = ExplainCache::new(ExplainCacheConfig { entries: 4 });
        let first = cache.get_or_compute("k", None, || complete(1));
        let second = cache.get_or_compute("k", None, || panic!("must not recompute"));
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ExplainCache::new(ExplainCacheConfig { entries: 0 });
        cache.get_or_compute("k", None, || complete(1));
        let again = cache.get_or_compute("k", None, || complete(2));
        assert_eq!(again, complete(2), "every request recomputes");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn non_deterministic_payloads_are_never_stored() {
        let cache = ExplainCache::new(ExplainCacheConfig { entries: 4 });
        cache.get_or_compute("deadline", None, || {
            Response::json(200, "{\"status\":\"deadline\"}")
        });
        cache.get_or_compute("error", None, || Response::json(422, "{}"));
        assert_eq!(cache.len(), 0);
        let recomputed = cache.get_or_compute("deadline", None, || complete(7));
        assert_eq!(recomputed, complete(7), "partial was not served from cache");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ExplainCache::new(ExplainCacheConfig { entries: 2 });
        cache.get_or_compute("a", None, || complete(1));
        cache.get_or_compute("b", None, || complete(2));
        cache.get_or_compute("a", None, || panic!("hit")); // refresh a
        cache.get_or_compute("c", None, || complete(3)); // evicts b
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let a_again = cache.get_or_compute("a", None, || panic!("a was refreshed"));
        assert_eq!(a_again, complete(1));
        let b_again = cache.get_or_compute("b", None, || complete(9));
        assert_eq!(b_again, complete(9), "b was the LRU victim");
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_compute() {
        let cache = Arc::new(ExplainCache::new(ExplainCacheConfig { entries: 4 }));
        let computes = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    cache.get_or_compute("k", None, || {
                        computes.fetch_add(1, Relaxed);
                        // Hold the flight open long enough for the other
                        // threads to join it.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        complete(42)
                    })
                })
            })
            .collect();
        let bodies: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(bodies.iter().all(|b| *b == complete(42)));
        assert_eq!(computes.load(Relaxed), 1, "one search served all 8 threads");
        assert_eq!(cache.hits() + cache.coalesced(), 7);
    }

    #[test]
    fn waiter_deadline_bounds_the_coalesced_wait() {
        let cache = Arc::new(ExplainCache::new(ExplainCacheConfig { entries: 4 }));
        let started = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                cache.get_or_compute("k", None, || {
                    started.wait();
                    std::thread::sleep(std::time::Duration::from_millis(300));
                    complete(1)
                })
            })
        };
        started.wait(); // the leader is computing
        let t0 = Instant::now();
        let deadline = t0 + std::time::Duration::from_millis(30);
        let waiter = cache.get_or_compute("k", Some(deadline), || {
            Response::json(200, "{\"status\":\"deadline\"}")
        });
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(250),
            "waiter did not block for the leader's full compute"
        );
        assert_eq!(waiter, Response::json(200, "{\"status\":\"deadline\"}"));
        leader.join().unwrap();
    }
}
