//! Endpoint handlers: JSON in, JSON out, engine in the middle.

use credence_core::{
    CredenceEngine, EngineConfig, EvalOptions, ExplainError, QueryAugmentationConfig,
    QueryReductionConfig, SentenceRemovalConfig,
};
use credence_index::{Bm25Params, DocId, Document, InvertedIndex};
use credence_json::{obj, parse, to_string, Value};
use credence_rank::{
    Bm25Ranker, NeuralSimConfig, NeuralSimRanker, PoolEntry, QlSmoothing, QueryLikelihoodRanker,
    Ranker, Rm3Config, Rm3Ranker,
};
use credence_text::Analyzer;

use crate::http::{Request, Response};

/// Everything a request handler needs, with `'static` lifetime so worker
/// threads can share it. Construct via [`AppState::leak`], which builds the
/// index and ranker once and leaks them (a deliberate one-time allocation
/// for the lifetime of the process, exactly like the original service
/// loading its Lucene index at startup).
pub struct AppState {
    engine: CredenceEngine<'static>,
}

/// Which ranking model the server explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankerChoice {
    /// BM25 with Anserini defaults.
    #[default]
    Bm25,
    /// Query likelihood with Dirichlet smoothing.
    QlDirichlet,
    /// Query likelihood with Jelinek-Mercer smoothing.
    QlJm,
    /// BM25 + RM3 pseudo-relevance feedback.
    Rm3,
    /// The neural-sim hybrid (trains embeddings at startup).
    Neural,
}

impl RankerChoice {
    /// Parse a CLI-style name (`bm25`, `ql`, `ql-jm`, `rm3`, `neural`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "bm25" => Some(Self::Bm25),
            "ql" | "ql-dirichlet" => Some(Self::QlDirichlet),
            "ql-jm" => Some(Self::QlJm),
            "rm3" | "bm25+rm3" => Some(Self::Rm3),
            "neural" | "neural-sim" => Some(Self::Neural),
            _ => None,
        }
    }
}

impl AppState {
    /// Build the full backend over `docs` and leak it to `'static`.
    pub fn leak(docs: Vec<Document>, config: EngineConfig) -> &'static AppState {
        Self::leak_with(docs, config, RankerChoice::Bm25)
    }

    /// Build the backend with an explicit ranking model.
    pub fn leak_with(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
    ) -> &'static AppState {
        let index: &'static InvertedIndex =
            Box::leak(Box::new(InvertedIndex::build(docs, Analyzer::english())));
        let ranker: &'static dyn Ranker = match choice {
            RankerChoice::Bm25 => {
                Box::leak(Box::new(Bm25Ranker::new(index, Bm25Params::default())))
            }
            RankerChoice::QlDirichlet => Box::leak(Box::new(QueryLikelihoodRanker::new(
                index,
                QlSmoothing::default(),
            ))),
            RankerChoice::QlJm => Box::leak(Box::new(QueryLikelihoodRanker::new(
                index,
                QlSmoothing::JelinekMercer { lambda: 0.5 },
            ))),
            RankerChoice::Rm3 => Box::leak(Box::new(Rm3Ranker::new(index, Rm3Config::default()))),
            RankerChoice::Neural => Box::leak(Box::new(NeuralSimRanker::train(
                index,
                NeuralSimConfig::default(),
            ))),
        };
        let engine = CredenceEngine::new(ranker, config);
        Box::leak(Box::new(AppState { engine }))
    }

    /// The engine, for in-process use in tests and experiments.
    pub fn engine(&self) -> &CredenceEngine<'static> {
        &self.engine
    }
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        to_string(&obj([("error", Value::from(message.into()))])),
    )
}

fn explain_error_response(err: ExplainError) -> Response {
    let status = match err {
        ExplainError::DocNotFound(_) => 404,
        _ => 422,
    };
    error_response(status, err.to_string())
}

/// Parse the request body as a JSON object.
fn json_body(req: &Request) -> Result<Value, Response> {
    let text = req
        .body_utf8()
        .ok_or_else(|| error_response(400, "body is not UTF-8"))?;
    let value = parse(text).map_err(|e| error_response(400, format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(error_response(400, "body must be a JSON object"));
    }
    Ok(value)
}

fn get_str<'v>(body: &'v Value, key: &str) -> Result<&'v str, Response> {
    body.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| error_response(400, format!("missing string field '{key}'")))
}

fn get_usize(body: &Value, key: &str) -> Result<usize, Response> {
    body.get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| error_response(400, format!("missing integer field '{key}'")))
}

fn get_usize_or(body: &Value, key: &str, default: usize) -> Result<usize, Response> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| error_response(400, format!("field '{key}' must be an integer"))),
    }
}

/// Optional per-request candidate-evaluation knobs: `eval_threads` (0 =
/// auto, 1 = serial) and `eval_parallel_threshold`. When neither is present
/// the default is returned and the engine-level configuration applies.
fn get_eval_options(body: &Value) -> Result<EvalOptions, Response> {
    let mut eval = EvalOptions::default();
    if let Some(v) = body.get("eval_threads") {
        eval.threads = v
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| error_response(400, "field 'eval_threads' must be an integer"))?;
    }
    if let Some(v) = body.get("eval_parallel_threshold") {
        eval.parallel_threshold = v.as_u64().map(|v| v as usize).ok_or_else(|| {
            error_response(400, "field 'eval_parallel_threshold' must be an integer")
        })?;
    }
    Ok(eval)
}

fn pool_entry_json(row: &PoolEntry) -> Value {
    obj([
        ("doc", Value::from(row.doc.0)),
        ("score", Value::from(row.score)),
        ("new_rank", Value::from(row.new_rank)),
        ("old_rank", Value::from(row.old_rank)),
        ("movement", Value::from(row.movement() as f64)),
        ("substituted", Value::from(row.substituted)),
    ])
}

/// Route one request to its handler.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/" | "/index.html") => Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: include_str!("ui.html").as_bytes().to_vec(),
        },
        ("GET", "/health") => Response::json(200, to_string(&obj([("status", Value::from("ok"))]))),
        ("GET", "/corpus") => corpus(state),
        ("GET", path) if path.starts_with("/doc/") => doc(state, &path[5..]),
        ("POST", "/rank") => rank(state, req),
        ("POST", "/explain/sentence-removal") => sentence_removal(state, req),
        ("POST", "/explain/query-augmentation") => query_augmentation(state, req),
        ("POST", "/explain/query-reduction") => query_reduction(state, req),
        ("POST", "/explain/doc2vec-nearest") => doc2vec_nearest(state, req),
        ("POST", "/explain/cosine-sampled") => cosine_sampled(state, req),
        ("POST", "/topics") => topics(state, req),
        ("POST", "/snippet") => snippet(state, req),
        ("POST", "/explain/nearest-to-text") => nearest_to_text(state, req),
        ("POST", "/rerank") => rerank(state, req),
        ("GET" | "POST", _) => error_response(404, "no such endpoint"),
        _ => error_response(405, "method not allowed"),
    }
}

fn corpus(state: &AppState) -> Response {
    let index = state.engine.ranker().index();
    let docs: Vec<Value> = index
        .documents()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            obj([
                ("doc", Value::from(i)),
                ("name", Value::from(d.name.as_str())),
                ("title", Value::from(d.title.as_str())),
            ])
        })
        .collect();
    Response::json(
        200,
        to_string(&obj([
            ("num_docs", Value::from(index.num_docs())),
            ("docs", Value::Array(docs)),
        ])),
    )
}

fn doc(state: &AppState, id: &str) -> Response {
    let Ok(id) = id.parse::<u32>() else {
        return error_response(400, "document id must be an integer");
    };
    let index = state.engine.ranker().index();
    match index.document(DocId(id)) {
        None => error_response(404, format!("document {id} not found")),
        Some(d) => Response::json(
            200,
            to_string(&obj([
                ("doc", Value::from(id)),
                ("name", Value::from(d.name.as_str())),
                ("title", Value::from(d.title.as_str())),
                ("body", Value::from(d.body.as_str())),
            ])),
        ),
    }
}

fn rank(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k) = match (get_str(&body, "query"), get_usize(&body, "k")) {
        (Ok(q), Ok(k)) => (q, k),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let rows: Vec<Value> = state
        .engine
        .rank(query, k)
        .into_iter()
        .map(|r| {
            obj([
                ("doc", Value::from(r.doc.0)),
                ("rank", Value::from(r.rank)),
                ("score", Value::from(r.score)),
                ("name", Value::from(r.name)),
                ("title", Value::from(r.title)),
            ])
        })
        .collect();
    Response::json(200, to_string(&obj([("ranking", Value::Array(rows))])))
}

fn sentence_removal(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
    ) {
        (Ok(q), Ok(k), Ok(d)) => (q, k, d),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
    };
    let n = match get_usize_or(&body, "n", 1) {
        Ok(n) => n,
        Err(r) => return r,
    };
    let eval = match get_eval_options(&body) {
        Ok(e) => e,
        Err(r) => return r,
    };
    let config = SentenceRemovalConfig {
        n,
        eval,
        ..Default::default()
    };
    match state
        .engine
        .sentence_removal(query, k, DocId(doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_sentences",
                            Value::Array(e.removed.iter().map(|&i| Value::from(i)).collect()),
                        ),
                        (
                            "removed_text",
                            Value::Array(
                                e.removed_text
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("perturbed_body", Value::from(e.perturbed_body.as_str())),
                        ("importance", Value::from(e.importance)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn query_augmentation(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
    ) {
        (Ok(q), Ok(k), Ok(d)) => (q, k, d),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
    };
    let (n, threshold) = match (
        get_usize_or(&body, "n", 1),
        get_usize_or(&body, "threshold", 1),
    ) {
        (Ok(n), Ok(t)) => (n, t),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let eval = match get_eval_options(&body) {
        Ok(e) => e,
        Err(r) => return r,
    };
    let config = QueryAugmentationConfig {
        n,
        threshold,
        eval,
        ..Default::default()
    };
    match state
        .engine
        .query_augmentation(query, k, DocId(doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "terms",
                            Value::Array(e.terms.iter().map(|t| Value::from(t.as_str())).collect()),
                        ),
                        ("augmented_query", Value::from(e.augmented_query.as_str())),
                        ("tfidf", Value::from(e.tfidf)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn query_reduction(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
    ) {
        (Ok(q), Ok(k), Ok(d)) => (q, k, d),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
    };
    let n = match get_usize_or(&body, "n", 1) {
        Ok(n) => n,
        Err(r) => return r,
    };
    let eval = match get_eval_options(&body) {
        Ok(e) => e,
        Err(r) => return r,
    };
    let config = QueryReductionConfig {
        n,
        eval,
        ..Default::default()
    };
    match state
        .engine
        .query_reduction(query, k, DocId(doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_terms",
                            Value::Array(
                                e.removed_terms
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("reduced_query", Value::from(e.reduced_query.as_str())),
                        ("old_rank", Value::from(e.old_rank)),
                        (
                            "new_rank",
                            e.new_rank.map(Value::from).unwrap_or(Value::Null),
                        ),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("old_rank", Value::from(result.old_rank)),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn instance_json(explanations: &[credence_core::InstanceExplanation]) -> Value {
    Value::Array(
        explanations
            .iter()
            .map(|e| {
                obj([
                    ("doc", Value::from(e.doc.0)),
                    ("similarity", Value::from(e.similarity)),
                    ("rank", e.rank.map(Value::from).unwrap_or(Value::Null)),
                ])
            })
            .collect(),
    )
}

fn doc2vec_nearest(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
    ) {
        (Ok(q), Ok(k), Ok(d)) => (q, k, d),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
    };
    let n = match get_usize_or(&body, "n", 1) {
        Ok(n) => n,
        Err(r) => return r,
    };
    match state.engine.doc2vec_nearest(query, k, DocId(doc as u32), n) {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj([("explanations", instance_json(&out))])),
        ),
    }
}

fn cosine_sampled(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
    ) {
        (Ok(q), Ok(k), Ok(d)) => (q, k, d),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
    };
    let n = match get_usize_or(&body, "n", 1) {
        Ok(n) => n,
        Err(r) => return r,
    };
    let samples = match body.get("samples") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(s) => Some(s as usize),
            None => return error_response(400, "field 'samples' must be an integer"),
        },
    };
    match state
        .engine
        .cosine_sampled(query, k, DocId(doc as u32), n, samples)
    {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj([("explanations", instance_json(&out))])),
        ),
    }
}

fn topics(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k) = match (get_str(&body, "query"), get_usize(&body, "k")) {
        (Ok(q), Ok(k)) => (q, k),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let num_topics = match get_usize_or(&body, "num_topics", 3) {
        Ok(n) => n,
        Err(r) => return r,
    };
    match state.engine.topics(query, k, num_topics) {
        Err(e) => explain_error_response(e),
        Ok(topics) => {
            let rows: Vec<Value> = topics
                .iter()
                .map(|t| {
                    obj([
                        ("topic", Value::from(t.topic)),
                        ("weight", Value::from(t.weight)),
                        (
                            "terms",
                            Value::Array(
                                t.terms
                                    .iter()
                                    .map(|(term, p)| {
                                        obj([
                                            ("term", Value::from(term.as_str())),
                                            ("probability", Value::from(*p)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Response::json(200, to_string(&obj([("topics", Value::Array(rows))])))
        }
    }
}

fn snippet(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, doc) = match (get_str(&body, "query"), get_usize(&body, "doc")) {
        (Ok(q), Ok(d)) => (q, d),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let window = match get_usize_or(&body, "window", 24) {
        Ok(w) => w,
        Err(r) => return r,
    };
    match state.engine.snippet(query, DocId(doc as u32), window) {
        Err(e) => explain_error_response(e),
        Ok((highlights, snippet)) => {
            let spans: Vec<Value> = highlights
                .iter()
                .map(|h| obj([("start", Value::from(h.start)), ("end", Value::from(h.end))]))
                .collect();
            let snippet_json = match snippet {
                None => Value::Null,
                Some(s) => obj([
                    ("text", Value::from(s.text)),
                    ("start", Value::from(s.start)),
                    ("end", Value::from(s.end)),
                    ("hits", Value::from(s.hits)),
                ]),
            };
            Response::json(
                200,
                to_string(&obj([
                    ("highlights", Value::Array(spans)),
                    ("snippet", snippet_json),
                ])),
            )
        }
    }
}

fn nearest_to_text(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let text = match get_str(&body, "text") {
        Ok(t) => t,
        Err(r) => return r,
    };
    let n = match get_usize_or(&body, "n", 3) {
        Ok(n) => n,
        Err(r) => return r,
    };
    // Optional: exclude the top-k of a query so only non-relevant documents
    // come back (the counterfactual framing).
    let exclude = match (body.get("query"), body.get("k")) {
        (Some(q), Some(k)) => match (q.as_str(), k.as_u64()) {
            (Some(q), Some(k)) => Some((q, k as usize)),
            _ => return error_response(400, "query must be a string and k an integer"),
        },
        _ => None,
    };
    let out = state.engine.nearest_to_text(text, n, exclude);
    Response::json(200, to_string(&obj([("neighbors", instance_json(&out))])))
}

fn rerank(state: &AppState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let (query, k, doc, edited) = match (
        get_str(&body, "query"),
        get_usize(&body, "k"),
        get_usize(&body, "doc"),
        get_str(&body, "body"),
    ) {
        (Ok(q), Ok(k), Ok(d), Ok(b)) => (q, k, d, b),
        (Err(r), _, _, _) | (_, Err(r), _, _) | (_, _, Err(r), _) | (_, _, _, Err(r)) => return r,
    };
    match state
        .engine
        .builder_rerank(query, k, DocId(doc as u32), edited)
    {
        Err(e) => explain_error_response(e),
        Ok(outcome) => Response::json(
            200,
            to_string(&obj([
                ("valid", Value::from(outcome.valid)),
                ("old_rank", Value::from(outcome.old_rank)),
                ("new_rank", Value::from(outcome.new_rank)),
                (
                    "revealed",
                    outcome
                        .revealed
                        .map(|d| Value::from(d.0))
                        .unwrap_or(Value::Null),
                ),
                (
                    "rows",
                    Value::Array(outcome.rows.iter().map(pool_entry_json).collect()),
                ),
            ])),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn demo_docs() -> Vec<Document> {
        vec![
            Document::new(
                "n1",
                "Outbreak news",
                "covid outbreak covid outbreak dominates the news cycle this week entirely",
            ),
            Document::new(
                "n2",
                "Quiet arrival",
                "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
                 for weeks before acting decisively.",
            ),
            Document::new(
                "n3",
                "Conspiracy corner",
                "The covid outbreak is a cover story. A secret microchip hides in every \
                 vaccine dose. The microchip tracks your movements constantly.",
            ),
            Document::new(
                "n4",
                "Copycat",
                "A secret microchip hides in every vaccine dose. The microchip tracks your \
                 movements constantly and secretly.",
            ),
            Document::new(
                "n5",
                "Harbor drills",
                "Outbreak drills continue at the harbor facility through the weekend shift.",
            ),
            Document::new(
                "n6",
                "Gardens",
                "The garden show opens to record spring crowds.",
            ),
        ]
    }

    fn state() -> &'static AppState {
        static STATE: OnceLock<&'static AppState> = OnceLock::new();
        STATE.get_or_init(|| AppState::leak(demo_docs(), EngineConfig::fast()))
    }

    fn post(path: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        };
        handle_request(state(), &req)
    }

    fn get(path: &str) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        handle_request(state(), &req)
    }

    fn body_json(resp: &Response) -> Value {
        parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn ui_page_served_at_root() {
        let resp = get("/");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/html; charset=utf-8");
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("CREDENCE"));
        assert!(html.contains("/explain/"), "UI drives the REST API");
    }

    #[test]
    fn ranker_choice_parses() {
        assert_eq!(RankerChoice::parse("bm25"), Some(RankerChoice::Bm25));
        assert_eq!(RankerChoice::parse("ql"), Some(RankerChoice::QlDirichlet));
        assert_eq!(RankerChoice::parse("rm3"), Some(RankerChoice::Rm3));
        assert_eq!(RankerChoice::parse("neural"), Some(RankerChoice::Neural));
        assert_eq!(RankerChoice::parse("zebra"), None);
    }

    #[test]
    fn state_with_alternative_ranker_serves() {
        let state =
            AppState::leak_with(demo_docs(), EngineConfig::fast(), RankerChoice::QlDirichlet);
        let req = Request {
            method: "POST".into(),
            path: "/rank".into(),
            headers: Default::default(),
            body: br#"{"query": "covid outbreak", "k": 3}"#.to_vec(),
        };
        let resp = handle_request(state, &req);
        assert_eq!(resp.status, 200);
        assert_eq!(state.engine().ranker().name(), "ql-dirichlet");
    }

    #[test]
    fn health_and_404_and_405() {
        assert_eq!(get("/health").status, 200);
        assert_eq!(get("/nope").status, 404);
        let req = Request {
            method: "DELETE".into(),
            path: "/rank".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        assert_eq!(handle_request(state(), &req).status, 405);
    }

    #[test]
    fn corpus_and_doc_endpoints() {
        let resp = get("/corpus");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("num_docs").unwrap().as_u64(), Some(6));

        let resp = get("/doc/2");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(v
            .get("body")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("microchip"));

        assert_eq!(get("/doc/99").status, 404);
        assert_eq!(get("/doc/zebra").status, 400);
    }

    #[test]
    fn rank_endpoint() {
        let resp = post("/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let ranking = v.get("ranking").unwrap().as_array().unwrap();
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].get("rank").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rank_validation_errors() {
        assert_eq!(post("/rank", "not json").status, 400);
        assert_eq!(post("/rank", r#"{"k": 3}"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid"}"#).status, 400);
        assert_eq!(post("/rank", r#"[1,2]"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid", "k": -1}"#).status, 400);
    }

    #[test]
    fn sentence_removal_endpoint() {
        let resp = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert_eq!(explanations.len(), 1);
        let new_rank = explanations[0].get("new_rank").unwrap().as_u64().unwrap();
        assert!(new_rank > 3);
    }

    #[test]
    fn eval_knobs_change_nothing_but_validate() {
        // The evaluation engine is bit-deterministic: a request that forces
        // the threaded path must produce a byte-identical payload.
        let plain = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        let tuned = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "eval_threads": 3, "eval_parallel_threshold": 1}"#,
        );
        assert_eq!(tuned.status, 200);
        assert_eq!(plain.body, tuned.body);

        let bad = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "eval_threads": "many"}"#,
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn sentence_removal_doc_errors() {
        assert_eq!(
            post(
                "/explain/sentence-removal",
                r#"{"query": "covid outbreak", "k": 3, "doc": 99}"#
            )
            .status,
            404
        );
        assert_eq!(
            post(
                "/explain/sentence-removal",
                r#"{"query": "covid outbreak", "k": 3, "doc": 5}"#
            )
            .status,
            422,
            "garden doc is not relevant"
        );
    }

    #[test]
    fn query_augmentation_endpoint() {
        let resp = post(
            "/explain/query-augmentation",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 2, "threshold": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert!(!explanations.is_empty());
        for e in explanations {
            assert!(e.get("new_rank").unwrap().as_u64().unwrap() <= 1);
            assert!(e
                .get("augmented_query")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("covid outbreak"));
        }
    }

    #[test]
    fn query_reduction_endpoint() {
        let resp = post(
            "/explain/query-reduction",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        for e in explanations {
            assert!(!e
                .get("removed_terms")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn instance_endpoints() {
        let resp = post(
            "/explain/doc2vec-nearest",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("explanations").unwrap().as_array().unwrap().len(), 1);

        let resp = post(
            "/explain/cosine-sampled",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "samples": 10}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("doc").unwrap().as_u64(), Some(3), "the copycat");
    }

    #[test]
    fn topics_endpoint() {
        let resp = post(
            "/topics",
            r#"{"query": "covid outbreak", "k": 3, "num_topics": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("topics").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rerank_endpoint_runs_figure5() {
        let resp = post(
            "/rerank",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2,
                "body": "The flu is a cover story. A secret chip hides in every dose."}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("valid").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("new_rank").unwrap().as_u64(), Some(4));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 4, "pool of k+1 documents");
        assert!(rows
            .iter()
            .any(|r| r.get("substituted").unwrap().as_bool() == Some(true)));
    }

    #[test]
    fn snippet_endpoint() {
        let resp = post(
            "/snippet",
            r#"{"query": "covid outbreak", "doc": 2, "window": 8}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(!v.get("highlights").unwrap().as_array().unwrap().is_empty());
        assert!(
            v.get("snippet")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(
            post("/snippet", r#"{"query": "covid", "doc": 999}"#).status,
            404
        );
    }

    #[test]
    fn nearest_to_text_endpoint() {
        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "secret microchip in vaccine doses", "n": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("neighbors").unwrap().as_array().unwrap().len(), 2);

        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "covid outbreak tonight", "n": 2, "query": "covid outbreak", "k": 3}"#,
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn rerank_missing_fields() {
        assert_eq!(
            post("/rerank", r#"{"query": "covid", "k": 3, "doc": 2}"#).status,
            400
        );
    }
}
