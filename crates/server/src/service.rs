//! Endpoint handlers: JSON in, JSON out, engine in the middle.
//!
//! Routing is table-driven: every endpoint registers once in [`ROUTES`]
//! with its canonical `/api/v1/...` path, and the dispatcher also serves
//! each API route at its historical unversioned path as a **deprecated
//! alias** that answers with a `Deprecation: true` header and a `Link` to
//! the successor. Request bodies parse through the typed structs in
//! [`crate::requests`] (all invalid fields reported at once, unknown
//! fields rejected), errors serialise through one envelope —
//! `{"error": {"code", "message", ...}}` with the stable codes from
//! [`ExplainError::code`] — and every request is counted and timed in the
//! [`Metrics`] registry exposed at `GET /metrics`.
//!
//! Serving is multi-tenant: requests resolve a [`CorpusSnapshot`] out of
//! the [`CorpusRegistry`] (by `corpus` name and optional pinned
//! `generation`) and run entirely against that immutable snapshot. The
//! corpus-lifecycle routes (`/api/v1/corpora...`) register, mutate, and
//! remove corpora at runtime, and every 2xx body carries a top-level
//! `corpus` + `generation` envelope naming the snapshot that answered.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use credence_core::{
    Corpus, CorpusInfo, CorpusRegistry, CorpusSnapshot, EngineConfig, ExplainError,
    FeatureAttributionConfig, FeatureAttributionResult, QueryAugmentationConfig,
    QueryReductionConfig, RankerFactory, SentenceRemovalConfig, SnapshotError, TermRemovalConfig,
};
use credence_index::{Bm25Params, DeltaOp, DocId, Document, InvertedIndex};
use credence_json::{obj, parse, to_string, Value};
use credence_rank::{
    Bm25Ranker, NeuralSimConfig, NeuralSimRanker, PoolEntry, QlSmoothing, QueryLikelihoodRanker,
    Ranker, Rm3Config, Rm3Ranker,
};
use credence_text::Analyzer;

use crate::explain_cache::{ExplainCache, ExplainCacheConfig};
use crate::http::{Request, Response};
use crate::jobs::{CancelOutcome, JobRunner, JobView, JobsConfig, SubmitOutcome};
use crate::metrics::Metrics;
use crate::requests::{
    CorpusPutRequest, CorpusRef, CosineSampledRequest, Doc2VecNearestRequest, DocAddRequest,
    DocPutRequest, FeatureAttributionRequest, FieldError, JobRequest, JobSubmitRequest,
    NearestToTextRequest, QueryAugmentationRequest, QueryReductionRequest, RankRequest,
    RefreshRequest, RerankRequest, SearchControls, SentenceRemovalRequest, SnippetRequest,
    TermRemovalRequest, TopicsRequest, DEFAULT_CORPUS,
};

/// The API version prefix canonical routes live under.
pub const API_PREFIX: &str = "/api/v1";

/// Everything a request handler needs, with `'static` lifetime so worker
/// threads can share it. Construct via [`AppState::leak`], which builds the
/// default corpus once and leaks the state (a deliberate one-time
/// allocation for the lifetime of the process, exactly like the original
/// service loading its Lucene index at startup). Further corpora register
/// and retire at runtime through the registry.
pub struct AppState {
    registry: CorpusRegistry,
    factory: RankerFactory,
    config: EngineConfig,
    metrics: Metrics,
    jobs: JobRunner,
    explain_cache: ExplainCache,
    lime: LimeStats,
    log_requests: AtomicBool,
}

/// Live counters behind the `credence_explain_lime_*` metric families:
/// surrogate fits actually run (cache hits are served without re-fitting
/// and therefore do not count), the perturbed variants they scored, the
/// attributions they returned, budget-limited partial fits, and the summed
/// fidelity (in millionths, for the average gauge).
#[derive(Default)]
struct LimeStats {
    fits: std::sync::atomic::AtomicU64,
    samples: std::sync::atomic::AtomicU64,
    attributions: std::sync::atomic::AtomicU64,
    partials: std::sync::atomic::AtomicU64,
    fidelity_micros: std::sync::atomic::AtomicU64,
}

impl LimeStats {
    fn record(&self, result: &FeatureAttributionResult) {
        self.fits.fetch_add(1, Ordering::Relaxed);
        self.samples
            .fetch_add(result.samples_evaluated as u64, Ordering::Relaxed);
        self.attributions
            .fetch_add(result.attributions.len() as u64, Ordering::Relaxed);
        if result.status.is_partial() {
            self.partials.fetch_add(1, Ordering::Relaxed);
        }
        self.fidelity_micros
            .fetch_add((result.fidelity * 1e6).round() as u64, Ordering::Relaxed);
    }
}

/// Which ranking model the server explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankerChoice {
    /// BM25 with Anserini defaults.
    #[default]
    Bm25,
    /// Query likelihood with Dirichlet smoothing.
    QlDirichlet,
    /// Query likelihood with Jelinek-Mercer smoothing.
    QlJm,
    /// BM25 + RM3 pseudo-relevance feedback.
    Rm3,
    /// The neural-sim hybrid (trains embeddings at startup).
    Neural,
}

impl RankerChoice {
    /// Parse a CLI-style name (`bm25`, `ql`, `ql-jm`, `rm3`, `neural`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "bm25" => Some(Self::Bm25),
            "ql" | "ql-dirichlet" => Some(Self::QlDirichlet),
            "ql-jm" => Some(Self::QlJm),
            "rm3" | "bm25+rm3" => Some(Self::Rm3),
            "neural" | "neural-sim" => Some(Self::Neural),
            _ => None,
        }
    }
}

/// The per-generation ranker constructor for `choice`. Every corpus in the
/// registry builds its rankers through this, so hot-swaps and merge-folded
/// generations all serve the model the process was started with.
fn ranker_factory(choice: RankerChoice) -> RankerFactory {
    Arc::new(move |index: &'static InvertedIndex| -> Box<dyn Ranker> {
        match choice {
            RankerChoice::Bm25 => Box::new(Bm25Ranker::new(index, Bm25Params::default())),
            RankerChoice::QlDirichlet => {
                Box::new(QueryLikelihoodRanker::new(index, QlSmoothing::default()))
            }
            RankerChoice::QlJm => Box::new(QueryLikelihoodRanker::new(
                index,
                QlSmoothing::JelinekMercer { lambda: 0.5 },
            )),
            RankerChoice::Rm3 => Box::new(Rm3Ranker::new(index, Rm3Config::default())),
            RankerChoice::Neural => {
                Box::new(NeuralSimRanker::train(index, NeuralSimConfig::default()))
            }
        }
    })
}

impl AppState {
    /// Build the full backend over `docs` and leak it to `'static`.
    pub fn leak(docs: Vec<Document>, config: EngineConfig) -> &'static AppState {
        Self::leak_with(docs, config, RankerChoice::Bm25)
    }

    /// Build the backend with an explicit ranking model.
    pub fn leak_with(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
    ) -> &'static AppState {
        Self::leak_jobs(docs, config, choice, JobsConfig::default())
    }

    /// Build the backend with explicit ranking model and job-subsystem
    /// sizing, and start the job worker pool. `docs` becomes generation 0
    /// of the `"default"` corpus.
    pub fn leak_jobs(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
        jobs: JobsConfig,
    ) -> &'static AppState {
        Self::leak_full(docs, config, choice, jobs, ExplainCacheConfig::default())
    }

    /// [`AppState::leak_jobs`] with explicit explanation-cache sizing
    /// (`cache.entries == 0` disables cross-request caching and
    /// coalescing).
    pub fn leak_full(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
        jobs: JobsConfig,
        cache: ExplainCacheConfig,
    ) -> &'static AppState {
        let factory = ranker_factory(choice);
        let registry = CorpusRegistry::new();
        registry.register(
            DEFAULT_CORPUS,
            docs,
            Analyzer::english(),
            Arc::clone(&factory),
            config.clone(),
        );
        let state: &'static AppState = Box::leak(Box::new(AppState {
            registry,
            factory,
            config,
            metrics: Metrics::new(ENDPOINT_LABELS),
            jobs: JobRunner::new(jobs),
            explain_cache: ExplainCache::new(cache),
            lime: LimeStats::default(),
            log_requests: AtomicBool::new(false),
        }));
        state.jobs.start(state);
        state
    }

    /// The multi-tenant corpus registry.
    pub fn registry(&self) -> &CorpusRegistry {
        &self.registry
    }

    /// Register (or hot-swap) a corpus under `name` with the server's
    /// configured ranking model and engine config.
    pub fn register_corpus(&self, name: &str, docs: Vec<Document>) -> Arc<Corpus> {
        self.registry.register(
            name,
            docs,
            Analyzer::english(),
            Arc::clone(&self.factory),
            self.config.clone(),
        )
    }

    /// The default corpus's live snapshot, for in-process use in tests and
    /// experiments.
    pub fn default_snapshot(&self) -> Arc<CorpusSnapshot> {
        self.registry
            .snapshot(DEFAULT_CORPUS, None)
            .expect("the default corpus is registered at startup")
    }

    /// The observability registry (served at `GET /metrics`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The async explanation job subsystem.
    pub fn jobs(&self) -> &JobRunner {
        &self.jobs
    }

    /// The cross-request explanation cache.
    pub fn explain_cache(&self) -> &ExplainCache {
        &self.explain_cache
    }

    /// Emit one structured log line per request to stderr (off by default
    /// so in-process tests stay quiet; `credence-serve` turns it on).
    pub fn enable_request_logging(&self) {
        self.log_requests.store(true, Ordering::Relaxed);
    }
}

impl crate::server::App for AppState {
    fn handle(&self, request: &Request) -> Response {
        handle_request(self, request)
    }

    fn record_rejected(&self, status: u16) {
        self.metrics.record_request("other", status, 0);
    }

    fn begin_shutdown(&self) {
        self.jobs.begin_shutdown(&self.metrics);
    }

    fn finish_shutdown(&self) {
        self.jobs.join_workers();
        self.registry.shutdown_all();
    }
}

/// Endpoint labels for the metrics registry — one per route plus the
/// `"other"` catch-all (unmatched paths, bad methods).
const ENDPOINT_LABELS: &[&str] = &[
    "ui",
    "health",
    "metrics",
    "corpus",
    "doc",
    "rank",
    "sentence_removal",
    "query_augmentation",
    "query_reduction",
    "term_removal",
    "feature_attribution",
    "doc2vec_nearest",
    "cosine_sampled",
    "nearest_to_text",
    "topics",
    "snippet",
    "rerank",
    "jobs",
    "corpora",
    "api_index",
    "other",
];

/// One row of the route table.
struct Route {
    method: &'static str,
    /// Unversioned path (the canonical form prepends [`API_PREFIX`]).
    path: &'static str,
    /// Match `path` as a prefix, passing the remainder to the handler.
    prefix: bool,
    /// API routes are canonical under `/api/v1`; their unversioned form is
    /// a deprecated alias. Infrastructure routes (UI, `/metrics`) are
    /// canonical unversioned.
    versioned: bool,
    /// Metrics label.
    endpoint: &'static str,
    handler: fn(&AppState, &Request, &str) -> Response,
}

/// The single route table: every handler registers exactly once and is
/// reachable both under [`API_PREFIX`] and at its unversioned alias.
const ROUTES: &[Route] = &[
    Route {
        method: "GET",
        path: "/",
        prefix: false,
        versioned: false,
        endpoint: "ui",
        handler: ui,
    },
    Route {
        method: "GET",
        path: "/index.html",
        prefix: false,
        versioned: false,
        endpoint: "ui",
        handler: ui,
    },
    Route {
        method: "GET",
        path: "/health",
        prefix: false,
        versioned: true,
        endpoint: "health",
        handler: health,
    },
    Route {
        method: "GET",
        path: "/metrics",
        prefix: false,
        versioned: false,
        endpoint: "metrics",
        handler: metrics_text,
    },
    Route {
        method: "GET",
        path: "/corpus",
        prefix: false,
        versioned: true,
        endpoint: "corpus",
        handler: corpus,
    },
    Route {
        method: "GET",
        path: "/doc/",
        prefix: true,
        versioned: true,
        endpoint: "doc",
        handler: doc,
    },
    Route {
        method: "POST",
        path: "/rank",
        prefix: false,
        versioned: true,
        endpoint: "rank",
        handler: rank,
    },
    Route {
        method: "POST",
        path: "/explain/sentence-removal",
        prefix: false,
        versioned: true,
        endpoint: "sentence_removal",
        handler: sentence_removal,
    },
    Route {
        method: "POST",
        path: "/explain/query-augmentation",
        prefix: false,
        versioned: true,
        endpoint: "query_augmentation",
        handler: query_augmentation,
    },
    Route {
        method: "POST",
        path: "/explain/query-reduction",
        prefix: false,
        versioned: true,
        endpoint: "query_reduction",
        handler: query_reduction,
    },
    Route {
        method: "POST",
        path: "/explain/term-removal",
        prefix: false,
        versioned: true,
        endpoint: "term_removal",
        handler: term_removal,
    },
    Route {
        method: "POST",
        path: "/explain/feature_attribution",
        prefix: false,
        versioned: true,
        endpoint: "feature_attribution",
        handler: feature_attribution,
    },
    Route {
        method: "POST",
        path: "/explain/doc2vec-nearest",
        prefix: false,
        versioned: true,
        endpoint: "doc2vec_nearest",
        handler: doc2vec_nearest,
    },
    Route {
        method: "POST",
        path: "/explain/cosine-sampled",
        prefix: false,
        versioned: true,
        endpoint: "cosine_sampled",
        handler: cosine_sampled,
    },
    Route {
        method: "POST",
        path: "/explain/nearest-to-text",
        prefix: false,
        versioned: true,
        endpoint: "nearest_to_text",
        handler: nearest_to_text,
    },
    Route {
        method: "POST",
        path: "/topics",
        prefix: false,
        versioned: true,
        endpoint: "topics",
        handler: topics,
    },
    Route {
        method: "POST",
        path: "/snippet",
        prefix: false,
        versioned: true,
        endpoint: "snippet",
        handler: snippet,
    },
    Route {
        method: "POST",
        path: "/rerank",
        prefix: false,
        versioned: true,
        endpoint: "rerank",
        handler: rerank,
    },
    Route {
        method: "POST",
        path: "/jobs",
        prefix: false,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_submit,
    },
    Route {
        method: "GET",
        path: "/jobs/",
        prefix: true,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_get,
    },
    Route {
        method: "DELETE",
        path: "/jobs/",
        prefix: true,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_cancel,
    },
    Route {
        method: "GET",
        path: "/corpora",
        prefix: false,
        versioned: true,
        endpoint: "corpora",
        handler: corpora_list,
    },
    Route {
        method: "GET",
        path: "/corpora/",
        prefix: true,
        versioned: true,
        endpoint: "corpora",
        handler: corpora_get,
    },
    Route {
        method: "PUT",
        path: "/corpora/",
        prefix: true,
        versioned: true,
        endpoint: "corpora",
        handler: corpora_put,
    },
    Route {
        method: "DELETE",
        path: "/corpora/",
        prefix: true,
        versioned: true,
        endpoint: "corpora",
        handler: corpora_delete,
    },
    Route {
        method: "POST",
        path: "/corpora/",
        prefix: true,
        versioned: true,
        endpoint: "corpora",
        handler: corpora_post,
    },
];

/// Build the unified error envelope:
/// `{"error": {"code": "...", "message": "..."}}`.
pub(crate) fn error_envelope(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(
        status,
        to_string(&obj([(
            "error",
            obj([
                ("code", Value::from(code)),
                ("message", Value::from(message.into())),
            ]),
        )])),
    )
}

/// The envelope for field-validation failures: code `invalid_field`, the
/// first offending field in `field`, and every failure in `details`.
pub(crate) fn invalid_fields_response(errors: Vec<FieldError>) -> Response {
    debug_assert!(!errors.is_empty());
    let message = errors
        .iter()
        .map(|e| format!("'{}' {}", e.field, e.message))
        .collect::<Vec<_>>()
        .join("; ");
    let details: Vec<Value> = errors
        .iter()
        .map(|e| {
            obj([
                ("field", Value::from(e.field.as_str())),
                ("message", Value::from(e.message.as_str())),
            ])
        })
        .collect();
    Response::json(
        400,
        to_string(&obj([(
            "error",
            obj([
                ("code", Value::from("invalid_field")),
                ("message", Value::from(message)),
                ("field", Value::from(errors[0].field.as_str())),
                ("details", Value::Array(details)),
            ]),
        )])),
    )
}

/// Map an [`ExplainError`] to its envelope — the single place the REST
/// status and stable code for every core error are decided.
fn explain_error_response(err: ExplainError) -> Response {
    let status = match err {
        ExplainError::DocNotFound(_) => 404,
        _ => 422,
    };
    error_envelope(status, err.code(), err.to_string())
}

/// Resolve the snapshot a request names, mapping failures to their stable
/// envelopes: `404 corpus_not_found` and `410 generation_gone`.
fn resolve(state: &AppState, corpus: &CorpusRef) -> Result<Arc<CorpusSnapshot>, Response> {
    state
        .registry
        .snapshot(&corpus.corpus, corpus.generation)
        .map_err(|err| match err {
            SnapshotError::CorpusNotFound => error_envelope(
                404,
                "corpus_not_found",
                format!("no corpus registered under '{}'", corpus.corpus),
            ),
            SnapshotError::GenerationGone => error_envelope(
                410,
                "generation_gone",
                format!(
                    "generation {} of corpus '{}' is no longer live and nothing pins it",
                    corpus.generation.unwrap_or(0),
                    corpus.corpus
                ),
            ),
        })
}

/// Prefix `fields` with the `corpus` + `generation` envelope pair naming
/// the snapshot that answered — carried by every 2xx body so clients (and
/// the cluster router) can detect cross-generation skew.
fn with_corpus(
    snap: &CorpusSnapshot,
    fields: Vec<(&'static str, Value)>,
) -> Vec<(&'static str, Value)> {
    let mut all = vec![
        ("corpus", Value::from(snap.corpus().to_string())),
        ("generation", Value::from(snap.generation() as usize)),
    ];
    all.extend(fields);
    all
}

/// Parse the request body as a JSON object.
pub(crate) fn json_body(req: &Request) -> Result<Value, Response> {
    let text = req
        .body_utf8()
        .ok_or_else(|| error_envelope(400, "invalid_json", "body is not UTF-8"))?;
    let value = parse(text)
        .map_err(|e| error_envelope(400, "invalid_json", format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(error_envelope(
            400,
            "invalid_request",
            "body must be a JSON object",
        ));
    }
    Ok(value)
}

fn pool_entry_json(row: &PoolEntry) -> Value {
    obj([
        ("doc", Value::from(row.doc.0)),
        ("score", Value::from(row.score)),
        ("new_rank", Value::from(row.new_rank)),
        ("old_rank", Value::from(row.old_rank)),
        ("movement", Value::from(row.movement() as f64)),
        ("substituted", Value::from(row.substituted)),
    ])
}

/// Strip the version prefix: `/api/v1/rank` → (`/rank`, true).
pub(crate) fn strip_version(path: &str) -> (&str, bool) {
    match path.strip_prefix(API_PREFIX) {
        Some("") => ("/", true),
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (path, false),
    }
}

/// Route one request through the table. Returns the endpoint label (for
/// metrics) alongside the response.
fn dispatch(state: &AppState, req: &Request) -> (&'static str, Response) {
    let (path, versioned) = strip_version(&req.path);
    // `/api/v1` itself is the discovery endpoint. Decided before the table
    // walk: its stripped path ("/") would otherwise collide with the UI
    // root row.
    if versioned && path == "/" {
        return if req.method == "GET" {
            ("api_index", api_index(state, req, ""))
        } else {
            (
                "other",
                error_envelope(405, "method_not_allowed", "method not allowed"),
            )
        };
    }
    let mut path_matched = false;
    for route in ROUTES {
        let tail = if route.prefix {
            path.strip_prefix(route.path)
        } else if path == route.path {
            Some("")
        } else {
            None
        };
        let Some(tail) = tail else { continue };
        path_matched = true;
        if route.method != req.method {
            continue;
        }
        let mut resp = (route.handler)(state, req, tail);
        if route.versioned && !versioned {
            resp = resp.with_header("deprecation", "true").with_header(
                "link",
                format!("<{API_PREFIX}{}>; rel=\"successor-version\"", req.path),
            );
        }
        return (route.endpoint, resp);
    }
    if path_matched {
        (
            "other",
            error_envelope(405, "method_not_allowed", "method not allowed"),
        )
    } else {
        (
            "other",
            error_envelope(404, "not_found", "no such endpoint"),
        )
    }
}

/// Route one request to its handler, recording metrics and (when enabled)
/// one structured log line carrying the request id.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    let request_id = state.metrics.next_request_id();
    let start = Instant::now();
    let (endpoint, resp) = dispatch(state, req);
    let duration_us = start.elapsed().as_micros() as u64;
    state
        .metrics
        .record_request(endpoint, resp.status, duration_us);
    if state.log_requests.load(Ordering::Relaxed) {
        eprintln!(
            "{}",
            to_string(&obj([
                ("request_id", Value::from(request_id as usize)),
                ("method", Value::from(req.method.as_str())),
                ("path", Value::from(req.path.as_str())),
                ("endpoint", Value::from(endpoint)),
                ("status", Value::from(resp.status as usize)),
                ("duration_us", Value::from(duration_us as usize)),
            ]))
        );
    }
    resp
}

fn ui(_state: &AppState, _req: &Request, _tail: &str) -> Response {
    Response::html(200, include_str!("ui.html").as_bytes().to_vec())
}

fn health(_state: &AppState, _req: &Request, _tail: &str) -> Response {
    Response::json(200, to_string(&obj([("status", Value::from("ok"))])))
}

fn metrics_text(state: &AppState, _req: &Request, _tail: &str) -> Response {
    // Fold every corpus's cumulative retrieval/cache counters into the
    // registry so each scrape sees process-wide totals.
    state
        .metrics
        .record_retrieval(state.registry.total_retrieval_stats());
    let mut text = state.metrics.render();
    render_corpus_metrics(&mut text, &state.registry.list());
    render_explain_cache_metrics(&mut text, &state.explain_cache);
    render_lime_metrics(&mut text, &state.lime);
    Response::text(200, text)
}

/// Append the `credence_explain_lime_*` families to a `/metrics` scrape,
/// rendered live from the counters the surrogate fits bump.
fn render_lime_metrics(out: &mut String, lime: &LimeStats) {
    use std::fmt::Write;
    let fits = lime.fits.load(Ordering::Relaxed);
    let families: [(&str, &str, &str, u64); 4] = [
        (
            "credence_explain_lime_fits_total",
            "counter",
            "Feature-attribution surrogate fits run (cache hits excluded).",
            fits,
        ),
        (
            "credence_explain_lime_samples_total",
            "counter",
            "Perturbed document variants scored for surrogate fits.",
            lime.samples.load(Ordering::Relaxed),
        ),
        (
            "credence_explain_lime_attributions_total",
            "counter",
            "Per-term attributions returned by surrogate fits.",
            lime.attributions.load(Ordering::Relaxed),
        ),
        (
            "credence_explain_lime_partials_total",
            "counter",
            "Surrogate fits truncated by a deadline, eval cap, or cancel.",
            lime.partials.load(Ordering::Relaxed),
        ),
    ];
    for (name, kind, help, value) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }
    let avg = if fits == 0 {
        0.0
    } else {
        lime.fidelity_micros.load(Ordering::Relaxed) as f64 / 1e6 / fits as f64
    };
    let name = "credence_explain_lime_fidelity_avg";
    let _ = writeln!(
        out,
        "# HELP {name} Mean surrogate fidelity (weighted R²) across fits."
    );
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {avg}");
}

/// Append the `credence_explain_cache_*` families to a `/metrics` scrape,
/// rendered live from the cache so every scrape sees current values.
fn render_explain_cache_metrics(out: &mut String, cache: &ExplainCache) {
    use std::fmt::Write;
    let families: [(&str, &str, &str, u64); 5] = [
        (
            "credence_explain_cache_hits_total",
            "counter",
            "Explain requests served from the explanation cache.",
            cache.hits(),
        ),
        (
            "credence_explain_cache_misses_total",
            "counter",
            "Explain requests that ran the underlying search.",
            cache.misses(),
        ),
        (
            "credence_explain_cache_coalesced_total",
            "counter",
            "Explain requests that joined an identical in-flight search.",
            cache.coalesced(),
        ),
        (
            "credence_explain_cache_evictions_total",
            "counter",
            "Cached explanations evicted to make room.",
            cache.evictions(),
        ),
        (
            "credence_explain_cache_size",
            "gauge",
            "Explanations currently cached.",
            cache.len() as u64,
        ),
    ];
    for (name, kind, help, value) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }
}

/// Append the `credence_corpus_*` families to a `/metrics` scrape: the
/// registry size plus per-corpus generation, doc count, staged-op backlog,
/// and merge totals. Rendered from live registry state on every scrape, so
/// removed corpora vanish instead of lingering as stale label sets.
fn render_corpus_metrics(out: &mut String, infos: &[CorpusInfo]) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP credence_corpus_count Registered corpora.");
    let _ = writeln!(out, "# TYPE credence_corpus_count gauge");
    let _ = writeln!(out, "credence_corpus_count {}", infos.len());
    let families: [(&str, &str, &str, fn(&CorpusInfo) -> u64); 4] = [
        (
            "credence_corpus_generation",
            "gauge",
            "Live generation per corpus.",
            |i| i.generation,
        ),
        (
            "credence_corpus_docs",
            "gauge",
            "Documents in the live generation.",
            |i| i.num_docs as u64,
        ),
        (
            "credence_corpus_pending_ops",
            "gauge",
            "Staged mutations not yet folded.",
            |i| i.pending_ops as u64,
        ),
        (
            "credence_corpus_merges_total",
            "counter",
            "Generations published by merges.",
            |i| i.merges,
        ),
    ];
    for (name, kind, help, value) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for info in infos {
            let _ = writeln!(out, "{name}{{corpus=\"{}\"}} {}", info.name, value(info));
        }
    }
}

fn corpus(state: &AppState, _req: &Request, _tail: &str) -> Response {
    let snap = match resolve(state, &CorpusRef::default()) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let docs: Vec<Value> = snap
        .index()
        .documents()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            obj([
                ("doc", Value::from(i)),
                ("name", Value::from(d.name.as_str())),
                ("title", Value::from(d.title.as_str())),
            ])
        })
        .collect();
    Response::json(
        200,
        to_string(&obj(with_corpus(
            &snap,
            vec![
                ("num_docs", Value::from(snap.index().num_docs())),
                ("docs", Value::Array(docs)),
            ],
        ))),
    )
}

fn doc(state: &AppState, _req: &Request, id: &str) -> Response {
    let Ok(id) = id.parse::<u32>() else {
        return error_envelope(400, "invalid_field", "document id must be an integer");
    };
    let snap = match resolve(state, &CorpusRef::default()) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap.index().document(DocId(id)) {
        None => error_envelope(404, "doc_not_found", format!("document {id} not found")),
        Some(d) => Response::json(
            200,
            to_string(&obj(with_corpus(
                &snap,
                vec![
                    ("doc", Value::from(id)),
                    ("name", Value::from(d.name.as_str())),
                    ("title", Value::from(d.title.as_str())),
                    ("body", Value::from(d.body.as_str())),
                ],
            ))),
        ),
    }
}

fn rank(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match RankRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let mut opts = snap.engine().config().retrieval;
    if let Some(strategy) = parsed.search_strategy {
        opts.strategy = strategy;
    }
    if let Some(shards) = parsed.search_shards {
        opts.shards = shards;
    }
    opts.partition = parsed.partition;
    let rows: Vec<Value> = snap
        .engine()
        .rank_with_options(&parsed.query, parsed.k, &opts)
        .into_iter()
        .map(|r| {
            obj([
                ("doc", Value::from(r.doc.0)),
                ("rank", Value::from(r.rank)),
                ("score", Value::from(r.score)),
                ("name", Value::from(r.name)),
                ("title", Value::from(r.title)),
            ])
        })
        .collect();
    Response::json(
        200,
        to_string(&obj(with_corpus(
            &snap,
            vec![("ranking", Value::Array(rows))],
        ))),
    )
}

/// The canonical cache key for an explain request: endpoint, resolved
/// corpus + generation, and every *payload-determining* parsed field,
/// joined by `\u{0}` (which cannot survive tokenisation, so keys cannot
/// collide with query text). Parsing already canonicalizes field order
/// and spelled-out defaults, so semantically identical bodies key equal.
///
/// Deliberately excluded: the eval knobs (`eval_threads`,
/// `eval_parallel_threshold`, `eval_exact`) — proven payload-invariant —
/// and `deadline_ms`, which is wall-clock-relative; deadline partials are
/// never cached (see [`crate::explain_cache`]). `max_evals` *is* included
/// because evaluation-capped truncation is deterministic.
fn explain_cache_key(
    endpoint: &str,
    snap: &CorpusSnapshot,
    query: &str,
    k: usize,
    doc: usize,
    n: usize,
    threshold: Option<usize>,
    controls: &SearchControls,
) -> String {
    let threshold = threshold.map_or_else(|| "-".to_string(), |t| t.to_string());
    let max_evals = controls
        .lifecycle
        .max_evals
        .map_or_else(|| "none".to_string(), |m| m.to_string());
    format!(
        "{endpoint}\u{0}{corpus}\u{0}{generation}\u{0}{query}\u{0}{k}\u{0}{doc}\u{0}{n}\u{0}\
         {threshold}\u{0}{max_size}\u{0}{max_candidates}\u{0}{max_evals}",
        corpus = snap.corpus(),
        generation = snap.generation(),
        max_size = controls.search.max_size,
        max_candidates = controls.search.max_candidates,
    )
}

/// Serve a sentence-removal request through the explanation cache:
/// repeated requests hit, concurrent identical requests coalesce, and
/// `explain_cache_bypass` (or a disabled cache) runs the search directly.
/// Both the synchronous endpoint and the job workers enter here, so a
/// finished job's stored payload satisfies a matching synchronous request
/// and vice versa.
pub(crate) fn cached_sentence_removal(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &SentenceRemovalRequest,
) -> Response {
    if parsed.controls.cache_bypass {
        return run_sentence_removal(state, snap, parsed);
    }
    let key = explain_cache_key(
        "sentence_removal",
        snap,
        &parsed.query,
        parsed.k,
        parsed.doc,
        parsed.n,
        None,
        &parsed.controls,
    );
    state
        .explain_cache
        .get_or_compute(&key, parsed.controls.lifecycle.deadline, || {
            run_sentence_removal(state, snap, parsed)
        })
}

/// Cache-fronted query augmentation (see [`cached_sentence_removal`]).
pub(crate) fn cached_query_augmentation(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &QueryAugmentationRequest,
) -> Response {
    if parsed.controls.cache_bypass {
        return run_query_augmentation(state, snap, parsed);
    }
    let key = explain_cache_key(
        "query_augmentation",
        snap,
        &parsed.query,
        parsed.k,
        parsed.doc,
        parsed.n,
        Some(parsed.threshold),
        &parsed.controls,
    );
    state
        .explain_cache
        .get_or_compute(&key, parsed.controls.lifecycle.deadline, || {
            run_query_augmentation(state, snap, parsed)
        })
}

/// Cache-fronted query reduction (see [`cached_sentence_removal`]).
pub(crate) fn cached_query_reduction(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &QueryReductionRequest,
) -> Response {
    if parsed.controls.cache_bypass {
        return run_query_reduction(state, snap, parsed);
    }
    let key = explain_cache_key(
        "query_reduction",
        snap,
        &parsed.query,
        parsed.k,
        parsed.doc,
        parsed.n,
        None,
        &parsed.controls,
    );
    state
        .explain_cache
        .get_or_compute(&key, parsed.controls.lifecycle.deadline, || {
            run_query_reduction(state, snap, parsed)
        })
}

/// Cache-fronted term removal (see [`cached_sentence_removal`]).
pub(crate) fn cached_term_removal(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &TermRemovalRequest,
) -> Response {
    if parsed.controls.cache_bypass {
        return run_term_removal(state, snap, parsed);
    }
    let key = explain_cache_key(
        "term_removal",
        snap,
        &parsed.query,
        parsed.k,
        parsed.doc,
        parsed.n,
        None,
        &parsed.controls,
    );
    state
        .explain_cache
        .get_or_compute(&key, parsed.controls.lifecycle.deadline, || {
            run_term_removal(state, snap, parsed)
        })
}

/// The cache key for a feature-attribution request. The shared
/// [`explain_cache_key`] layout does not fit (no `n`/`threshold`, but four
/// sampler fields that change the payload), so the endpoint keys itself:
/// `samples`, `seed`, `top_m`, and the ridge `lambda` are all included, as
/// is `max_candidates` (which caps the surrogate features) and `max_evals`
/// (deterministic truncation). The eval knobs and `deadline_ms` stay
/// excluded for the same reasons as the other explainers.
fn lime_cache_key(snap: &CorpusSnapshot, parsed: &FeatureAttributionRequest) -> String {
    let max_evals = parsed
        .controls
        .lifecycle
        .max_evals
        .map_or_else(|| "none".to_string(), |m| m.to_string());
    format!(
        "feature_attribution\u{0}{corpus}\u{0}{generation}\u{0}{query}\u{0}{k}\u{0}{doc}\u{0}\
         {samples}\u{0}{seed}\u{0}{top_m}\u{0}{lambda}\u{0}{max_candidates}\u{0}{max_evals}",
        corpus = snap.corpus(),
        generation = snap.generation(),
        query = parsed.query,
        k = parsed.k,
        doc = parsed.doc,
        samples = parsed.samples,
        seed = parsed.seed,
        top_m = parsed.top_m,
        lambda = parsed.lambda,
        max_candidates = parsed.controls.search.max_candidates,
    )
}

/// Cache-fronted feature attribution (see [`cached_sentence_removal`]).
/// Safe to cache despite being sampled: the payload is a pure function of
/// the key — the seed pins the mask stream and the generation pins the
/// corpus — so a hit is byte-identical to a recompute.
pub(crate) fn cached_feature_attribution(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &FeatureAttributionRequest,
) -> Response {
    if parsed.controls.cache_bypass {
        return run_feature_attribution(state, snap, parsed);
    }
    let key = lime_cache_key(snap, parsed);
    state
        .explain_cache
        .get_or_compute(&key, parsed.controls.lifecycle.deadline, || {
            run_feature_attribution(state, snap, parsed)
        })
}

fn feature_attribution(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match FeatureAttributionRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    cached_feature_attribution(state, &snap, &parsed)
}

/// Serialise a finished feature-attribution run into the REST payload.
/// Public because the CLI prints exactly this body for its local engine —
/// one serialisation point keeps the two surfaces byte-identical.
pub fn feature_attribution_payload(
    corpus: &str,
    generation: u64,
    request: (usize, u64, usize, f64),
    result: &FeatureAttributionResult,
) -> String {
    let (samples, seed, top_m, lambda) = request;
    let attributions: Vec<Value> = result
        .attributions
        .iter()
        .map(|a| {
            obj([
                ("term", Value::from(a.term.as_str())),
                ("weight", Value::from(a.weight)),
            ])
        })
        .collect();
    to_string(&obj([
        ("corpus", Value::from(corpus.to_string())),
        ("generation", Value::from(generation as usize)),
        ("status", Value::from(result.status.as_str())),
        ("old_rank", Value::from(result.old_rank)),
        (
            "candidates_evaluated",
            Value::from(result.samples_evaluated),
        ),
        ("samples", Value::from(samples)),
        ("seed", Value::from(seed as usize)),
        ("top_m", Value::from(top_m)),
        ("lambda", Value::from(lambda)),
        ("features", Value::from(result.features)),
        ("intercept", Value::from(result.intercept)),
        ("fidelity", Value::from(result.fidelity)),
        ("attributions", Value::Array(attributions)),
    ]))
}

/// Execute a parsed feature-attribution request (shared with job workers).
pub(crate) fn run_feature_attribution(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &FeatureAttributionRequest,
) -> Response {
    let config = FeatureAttributionConfig {
        samples: parsed.samples,
        seed: parsed.seed,
        top_m: parsed.top_m,
        lambda: parsed.lambda,
        max_features: parsed.controls.search.max_candidates,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
    };
    let started = Instant::now();
    match snap.engine().feature_attribution(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        &config,
    ) {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.samples_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            state.lime.record(&result);
            Response::json(
                200,
                feature_attribution_payload(
                    snap.corpus(),
                    snap.generation(),
                    (parsed.samples, parsed.seed, parsed.top_m, parsed.lambda),
                    &result,
                ),
            )
        }
    }
}

fn sentence_removal(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match SentenceRemovalRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    cached_sentence_removal(state, &snap, &parsed)
}

/// Execute a parsed sentence-removal request against a resolved snapshot.
/// Shared verbatim by the synchronous endpoint and the job workers, so
/// both produce the same payload for the same request and generation.
pub(crate) fn run_sentence_removal(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &SentenceRemovalRequest,
) -> Response {
    let config = SentenceRemovalConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match snap
        .engine()
        .sentence_removal(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_sentences",
                            Value::Array(e.removed.iter().map(|&i| Value::from(i)).collect()),
                        ),
                        (
                            "removed_text",
                            Value::Array(
                                e.removed_text
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("perturbed_body", Value::from(e.perturbed_body.as_str())),
                        ("importance", Value::from(e.importance)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    snap,
                    vec![
                        ("status", Value::from(result.status.as_str())),
                        ("old_rank", Value::from(result.old_rank)),
                        (
                            "candidates_evaluated",
                            Value::from(result.candidates_evaluated),
                        ),
                        ("explanations", Value::Array(explanations)),
                    ],
                ))),
            )
        }
    }
}

fn query_augmentation(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match QueryAugmentationRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    cached_query_augmentation(state, &snap, &parsed)
}

/// Execute a parsed query-augmentation request (shared with job workers).
pub(crate) fn run_query_augmentation(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &QueryAugmentationRequest,
) -> Response {
    let config = QueryAugmentationConfig {
        n: parsed.n,
        threshold: parsed.threshold,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match snap.engine().query_augmentation(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        &config,
    ) {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "terms",
                            Value::Array(e.terms.iter().map(|t| Value::from(t.as_str())).collect()),
                        ),
                        ("augmented_query", Value::from(e.augmented_query.as_str())),
                        ("tfidf", Value::from(e.tfidf)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    snap,
                    vec![
                        ("status", Value::from(result.status.as_str())),
                        ("old_rank", Value::from(result.old_rank)),
                        (
                            "candidates_evaluated",
                            Value::from(result.candidates_evaluated),
                        ),
                        ("explanations", Value::Array(explanations)),
                    ],
                ))),
            )
        }
    }
}

fn query_reduction(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match QueryReductionRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    cached_query_reduction(state, &snap, &parsed)
}

/// Execute a parsed query-reduction request (shared with job workers).
pub(crate) fn run_query_reduction(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &QueryReductionRequest,
) -> Response {
    let config = QueryReductionConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match snap
        .engine()
        .query_reduction(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_terms",
                            Value::Array(
                                e.removed_terms
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("reduced_query", Value::from(e.reduced_query.as_str())),
                        ("old_rank", Value::from(e.old_rank)),
                        (
                            "new_rank",
                            e.new_rank.map(Value::from).unwrap_or(Value::Null),
                        ),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    snap,
                    vec![
                        ("status", Value::from(result.status.as_str())),
                        ("old_rank", Value::from(result.old_rank)),
                        (
                            "candidates_evaluated",
                            Value::from(result.candidates_evaluated),
                        ),
                        ("explanations", Value::Array(explanations)),
                    ],
                ))),
            )
        }
    }
}

fn term_removal(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match TermRemovalRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    cached_term_removal(state, &snap, &parsed)
}

/// Execute a parsed term-removal request (shared with job workers).
pub(crate) fn run_term_removal(
    state: &AppState,
    snap: &CorpusSnapshot,
    parsed: &TermRemovalRequest,
) -> Response {
    let config = TermRemovalConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match snap
        .engine()
        .term_removal(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_terms",
                            Value::Array(
                                e.removed_terms
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("perturbed_body", Value::from(e.perturbed_body.as_str())),
                        ("importance", Value::from(e.importance)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    snap,
                    vec![
                        ("status", Value::from(result.status.as_str())),
                        ("old_rank", Value::from(result.old_rank)),
                        (
                            "candidates_evaluated",
                            Value::from(result.candidates_evaluated),
                        ),
                        ("explanations", Value::Array(explanations)),
                    ],
                ))),
            )
        }
    }
}

fn instance_json(explanations: &[credence_core::InstanceExplanation]) -> Value {
    Value::Array(
        explanations
            .iter()
            .map(|e| {
                obj([
                    ("doc", Value::from(e.doc.0)),
                    ("similarity", Value::from(e.similarity)),
                    ("rank", e.rank.map(Value::from).unwrap_or(Value::Null)),
                ])
            })
            .collect(),
    )
}

fn doc2vec_nearest(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match Doc2VecNearestRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap
        .engine()
        .doc2vec_nearest(&parsed.query, parsed.k, DocId(parsed.doc as u32), parsed.n)
    {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj(with_corpus(
                &snap,
                vec![("explanations", instance_json(&out))],
            ))),
        ),
    }
}

fn cosine_sampled(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match CosineSampledRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap.engine().cosine_sampled(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        parsed.n,
        parsed.samples,
    ) {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj(with_corpus(
                &snap,
                vec![("explanations", instance_json(&out))],
            ))),
        ),
    }
}

fn topics(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match TopicsRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap
        .engine()
        .topics(&parsed.query, parsed.k, parsed.num_topics)
    {
        Err(e) => explain_error_response(e),
        Ok(topics) => {
            let rows: Vec<Value> = topics
                .iter()
                .map(|t| {
                    obj([
                        ("topic", Value::from(t.topic)),
                        ("weight", Value::from(t.weight)),
                        (
                            "terms",
                            Value::Array(
                                t.terms
                                    .iter()
                                    .map(|(term, p)| {
                                        obj([
                                            ("term", Value::from(term.as_str())),
                                            ("probability", Value::from(*p)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    &snap,
                    vec![("topics", Value::Array(rows))],
                ))),
            )
        }
    }
}

fn snippet(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match SnippetRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap
        .engine()
        .snippet(&parsed.query, DocId(parsed.doc as u32), parsed.window)
    {
        Err(e) => explain_error_response(e),
        Ok((highlights, snippet)) => {
            let spans: Vec<Value> = highlights
                .iter()
                .map(|h| obj([("start", Value::from(h.start)), ("end", Value::from(h.end))]))
                .collect();
            let snippet_json = match snippet {
                None => Value::Null,
                Some(s) => obj([
                    ("text", Value::from(s.text)),
                    ("start", Value::from(s.start)),
                    ("end", Value::from(s.end)),
                    ("hits", Value::from(s.hits)),
                ]),
            };
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    &snap,
                    vec![
                        ("highlights", Value::Array(spans)),
                        ("snippet", snippet_json),
                    ],
                ))),
            )
        }
    }
}

fn nearest_to_text(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match NearestToTextRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let exclude = parsed.exclude.as_ref().map(|(q, k)| (q.as_str(), *k));
    let out = snap
        .engine()
        .nearest_to_text(&parsed.text, parsed.n, exclude);
    Response::json(
        200,
        to_string(&obj(with_corpus(
            &snap,
            vec![("neighbors", instance_json(&out))],
        ))),
    )
}

fn rerank(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match RerankRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, &parsed.corpus) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match snap.engine().builder_rerank_budgeted(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        &parsed.body,
        &parsed.lifecycle,
    ) {
        Err(e) => explain_error_response(e),
        Ok(outcome) => Response::json(
            200,
            to_string(&obj(with_corpus(
                &snap,
                vec![
                    ("valid", Value::from(outcome.valid)),
                    ("old_rank", Value::from(outcome.old_rank)),
                    ("new_rank", Value::from(outcome.new_rank)),
                    (
                        "revealed",
                        outcome
                            .revealed
                            .map(|d| Value::from(d.0))
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "rows",
                        Value::Array(outcome.rows.iter().map(pool_entry_json).collect()),
                    ),
                ],
            ))),
        ),
    }
}

/// Execute an admitted job request against its pinned snapshot through the
/// same cache-fronted `cached_*` path the synchronous endpoint uses — the
/// single point that guarantees job payloads are bit-identical to
/// synchronous responses for the same generation, and the unification of
/// the job result store with the explanation cache: a finished job's
/// payload is deposited where a matching synchronous request will hit it,
/// and a cached synchronous payload satisfies a matching job without
/// re-running the search.
pub(crate) fn execute_job(
    state: &AppState,
    snap: &CorpusSnapshot,
    request: &JobRequest,
) -> Response {
    match request {
        JobRequest::SentenceRemoval(r) => cached_sentence_removal(state, snap, r),
        JobRequest::QueryAugmentation(r) => cached_query_augmentation(state, snap, r),
        JobRequest::QueryReduction(r) => cached_query_reduction(state, snap, r),
        JobRequest::TermRemoval(r) => cached_term_removal(state, snap, r),
        JobRequest::FeatureAttribution(r) => cached_feature_attribution(state, snap, r),
    }
}

/// `POST /api/v1/jobs` — admit an explanation request into the queue,
/// pinning the snapshot it names so the job executes against that exact
/// generation no matter how far the corpus advances before a worker gets
/// to it.
fn jobs_submit(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match JobSubmitRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let snap = match resolve(state, parsed.request.corpus_ref()) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let (corpus, generation) = (snap.corpus().to_string(), snap.generation());
    match state.jobs.submit(parsed.request, snap, &state.metrics) {
        SubmitOutcome::Accepted(id) => Response::json(
            202,
            to_string(&obj([
                ("corpus", Value::from(corpus)),
                ("generation", Value::from(generation as usize)),
                ("job_id", Value::from(format!("job-{id}"))),
                ("status", Value::from("queued")),
            ])),
        ),
        SubmitOutcome::QueueFull => error_envelope(
            429,
            "queue_full",
            format!(
                "job queue is full ({} waiting); retry later",
                state.jobs.config().queue_depth
            ),
        )
        .with_header("retry-after", "1"),
        SubmitOutcome::ShuttingDown => error_envelope(
            503,
            "shutting_down",
            "server is draining; no new jobs accepted",
        )
        .with_header("retry-after", "1"),
    }
}

/// Parse a `job-<n>` wire id into the runner's numeric id.
fn parse_job_id(tail: &str) -> Option<u64> {
    tail.strip_prefix("job-")?.parse().ok()
}

/// Render one job snapshot: `410` + an embedded `job_expired` error for
/// expired jobs, `200` with the stored result (if any) otherwise.
fn job_response(view: &JobView) -> Response {
    let id = Value::from(format!("job-{}", view.id));
    if view.state == crate::jobs::JobState::Expired {
        return Response::json(
            410,
            to_string(&obj([
                ("corpus", Value::from(view.corpus.clone())),
                ("generation", Value::from(view.generation as usize)),
                ("job_id", id),
                ("status", Value::from("expired")),
                ("endpoint", Value::from(view.endpoint)),
                (
                    "error",
                    obj([
                        ("code", Value::from("job_expired")),
                        (
                            "message",
                            Value::from("the result aged out of the store and was discarded"),
                        ),
                    ]),
                ),
            ])),
        );
    }
    let mut fields: Vec<(&str, Value)> = vec![
        ("corpus", Value::from(view.corpus.clone())),
        ("generation", Value::from(view.generation as usize)),
        ("job_id", id),
        ("status", Value::from(view.state.as_str())),
        ("endpoint", Value::from(view.endpoint)),
    ];
    if let Some((status, payload)) = &view.result {
        fields.push(("result", payload.clone()));
        fields.push(("result_status", Value::from(*status as usize)));
    }
    Response::json(200, to_string(&obj(fields)))
}

/// `GET /api/v1/jobs/{id}` — poll one job.
fn jobs_get(state: &AppState, _req: &Request, tail: &str) -> Response {
    let Some(id) = parse_job_id(tail) else {
        return error_envelope(400, "invalid_field", "job id must look like job-<n>");
    };
    match state.jobs.get(id, &state.metrics) {
        None => error_envelope(404, "job_not_found", format!("no such job: job-{id}")),
        Some(view) => job_response(&view),
    }
}

/// `DELETE /api/v1/jobs/{id}` — cancel one job.
fn jobs_cancel(state: &AppState, _req: &Request, tail: &str) -> Response {
    let Some(id) = parse_job_id(tail) else {
        return error_envelope(400, "invalid_field", "job id must look like job-<n>");
    };
    let wire_id = Value::from(format!("job-{id}"));
    let outcome = match state.jobs.cancel(id, &state.metrics) {
        None => return error_envelope(404, "job_not_found", format!("no such job: job-{id}")),
        Some(o) => o,
    };
    // Re-fetch the view so the envelope carries the job's pinned corpus
    // coordinates, mirroring every other 2xx body.
    let mut fields: Vec<(&str, Value)> = Vec::new();
    if let Some(view) = state.jobs.get(id, &state.metrics) {
        fields.push(("corpus", Value::from(view.corpus.clone())));
        fields.push(("generation", Value::from(view.generation as usize)));
    }
    fields.push(("job_id", wire_id));
    match outcome {
        CancelOutcome::Cancelled => {
            fields.push(("status", Value::from("cancelled")));
            Response::json(200, to_string(&obj(fields)))
        }
        CancelOutcome::CancelRequested => {
            fields.push(("status", Value::from("running")));
            fields.push(("cancel_requested", Value::from(true)));
            Response::json(202, to_string(&obj(fields)))
        }
        CancelOutcome::AlreadyTerminal(state) => {
            fields.push(("status", Value::from(state.as_str())));
            Response::json(200, to_string(&obj(fields)))
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus lifecycle
// ---------------------------------------------------------------------------

/// How long a `refresh: true` mutation waits for its seq ticket to fold into
/// a published generation before giving up with `503 refresh_timeout`.
const REFRESH_TIMEOUT: Duration = Duration::from_secs(30);

/// `GET /api/v1` — the discovery index. Generated from the dispatcher's own
/// route table, so the advertised surface can never drift from what actually
/// serves: each versioned row appears once canonically and once as its
/// deprecated unversioned alias with a `successor` link.
fn api_index(state: &AppState, _req: &Request, _tail: &str) -> Response {
    let mut routes: Vec<Value> = vec![obj([
        ("method", Value::from("GET")),
        ("path", Value::from(API_PREFIX)),
        ("endpoint", Value::from("api_index")),
        ("deprecated", Value::from(false)),
    ])];
    for route in ROUTES {
        if route.versioned {
            let canonical = format!("{API_PREFIX}{}", route.path);
            routes.push(obj([
                ("method", Value::from(route.method)),
                ("path", Value::from(canonical.clone())),
                ("endpoint", Value::from(route.endpoint)),
                ("deprecated", Value::from(false)),
            ]));
            routes.push(obj([
                ("method", Value::from(route.method)),
                ("path", Value::from(route.path)),
                ("endpoint", Value::from(route.endpoint)),
                ("deprecated", Value::from(true)),
                ("successor", Value::from(canonical)),
            ]));
        } else {
            routes.push(obj([
                ("method", Value::from(route.method)),
                ("path", Value::from(route.path)),
                ("endpoint", Value::from(route.endpoint)),
                ("deprecated", Value::from(false)),
            ]));
        }
    }
    let corpora: Vec<Value> = state
        .registry
        .names()
        .into_iter()
        .map(Value::from)
        .collect();
    Response::json(
        200,
        to_string(&obj([
            ("version", Value::from("v1")),
            ("corpora", Value::Array(corpora)),
            ("routes", Value::Array(routes)),
        ])),
    )
}

/// The object a `/corpora/...` tail names.
enum CorpusTail<'a> {
    /// `/corpora/{name}` — the corpus itself.
    Corpus(&'a str),
    /// `/corpora/{name}/docs` — the document collection.
    Docs(&'a str),
    /// `/corpora/{name}/docs/{id}` — one named document.
    Doc(&'a str, &'a str),
}

fn parse_corpus_tail(tail: &str) -> Result<CorpusTail<'_>, Response> {
    let invalid = || error_envelope(404, "not_found", "no such endpoint");
    match tail.split_once('/') {
        None if !tail.is_empty() => Ok(CorpusTail::Corpus(tail)),
        Some((name, rest)) if !name.is_empty() => match rest.split_once('/') {
            None if rest == "docs" => Ok(CorpusTail::Docs(name)),
            Some(("docs", id)) if !id.is_empty() => Ok(CorpusTail::Doc(name, id)),
            _ => Err(invalid()),
        },
        _ => Err(invalid()),
    }
}

/// Render one corpus summary. Uses the `corpus`/`generation` envelope keys
/// so the listing rows match every other body's vocabulary.
fn corpus_info_json(info: &CorpusInfo) -> Value {
    obj([
        ("corpus", Value::from(info.name.as_str())),
        ("generation", Value::from(info.generation as usize)),
        ("num_docs", Value::from(info.num_docs)),
        ("pending_ops", Value::from(info.pending_ops)),
        ("merges", Value::from(info.merges as usize)),
    ])
}

/// `GET /api/v1/corpora` — list every registered corpus.
fn corpora_list(state: &AppState, _req: &Request, _tail: &str) -> Response {
    let infos: Vec<Value> = state.registry.list().iter().map(corpus_info_json).collect();
    Response::json(200, to_string(&obj([("corpora", Value::Array(infos))])))
}

fn corpus_not_found(name: &str) -> Response {
    error_envelope(
        404,
        "corpus_not_found",
        format!("no corpus registered under '{name}'"),
    )
}

/// Build a [`CorpusRef`] naming the live generation of `name`.
fn live_ref(name: &str) -> CorpusRef {
    CorpusRef {
        corpus: name.to_string(),
        generation: None,
    }
}

/// `GET /api/v1/corpora/{name}[/docs[/{id}]]` — corpus info, the document
/// listing, or one document looked up by external name.
fn corpora_get(state: &AppState, _req: &Request, tail: &str) -> Response {
    let tail = match parse_corpus_tail(tail) {
        Ok(t) => t,
        Err(r) => return r,
    };
    match tail {
        CorpusTail::Corpus(name) => match state.registry.get(name) {
            None => corpus_not_found(name),
            Some(corpus) => Response::json(200, to_string(&corpus_info_json(&corpus.info()))),
        },
        CorpusTail::Docs(name) => {
            let snap = match resolve(state, &live_ref(name)) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let docs: Vec<Value> = snap
                .index()
                .documents()
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    obj([
                        ("doc", Value::from(i)),
                        ("name", Value::from(d.name.as_str())),
                        ("title", Value::from(d.title.as_str())),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj(with_corpus(
                    &snap,
                    vec![
                        ("num_docs", Value::from(snap.index().num_docs())),
                        ("docs", Value::Array(docs)),
                    ],
                ))),
            )
        }
        CorpusTail::Doc(name, id) => {
            let snap = match resolve(state, &live_ref(name)) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let found = snap.index().documents().iter().position(|d| d.name == id);
            match found {
                None => error_envelope(
                    404,
                    "doc_not_found",
                    format!("no document named '{id}' in corpus '{name}'"),
                ),
                Some(i) => {
                    let d = &snap.index().documents()[i];
                    Response::json(
                        200,
                        to_string(&obj(with_corpus(
                            &snap,
                            vec![
                                ("doc", Value::from(i)),
                                ("name", Value::from(d.name.as_str())),
                                ("title", Value::from(d.title.as_str())),
                                ("body", Value::from(d.body.as_str())),
                            ],
                        ))),
                    )
                }
            }
        }
    }
}

/// The shared tail of every staged mutation: `202 staged` with the seq
/// ticket, or — under `refresh: true` — wait for the ticket to fold and
/// answer `200 applied` (or `503 refresh_timeout` if the merger can't keep
/// up within [`REFRESH_TIMEOUT`]).
fn mutation_response(corpus: &Corpus, doc: &str, seq: u64, refresh: bool) -> Response {
    if refresh {
        if !corpus.wait_for_seq(seq, REFRESH_TIMEOUT) {
            return error_envelope(
                503,
                "refresh_timeout",
                format!(
                    "staged op {seq} did not fold into a published generation within {}s",
                    REFRESH_TIMEOUT.as_secs()
                ),
            )
            .with_header("retry-after", "1");
        }
        return Response::json(
            200,
            to_string(&obj([
                ("corpus", Value::from(corpus.name())),
                ("generation", Value::from(corpus.generation() as usize)),
                ("name", Value::from(doc)),
                ("status", Value::from("applied")),
            ])),
        );
    }
    Response::json(
        202,
        to_string(&obj([
            ("corpus", Value::from(corpus.name())),
            ("generation", Value::from(corpus.generation() as usize)),
            ("name", Value::from(doc)),
            ("seq", Value::from(seq as usize)),
            ("status", Value::from("staged")),
        ])),
    )
}

/// `PUT /api/v1/corpora/{name}` (register / hot-swap a corpus) and
/// `PUT /api/v1/corpora/{name}/docs/{id}` (upsert one document).
fn corpora_put(state: &AppState, req: &Request, tail: &str) -> Response {
    let tail = match parse_corpus_tail(tail) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    match tail {
        CorpusTail::Corpus(name) => {
            if name == DEFAULT_CORPUS {
                return error_envelope(
                    409,
                    "corpus_protected",
                    "the default corpus cannot be replaced or removed",
                );
            }
            let parsed = match CorpusPutRequest::parse(&body) {
                Ok(p) => p,
                Err(errors) => return invalid_fields_response(errors),
            };
            let replaced = state.registry.get(name).is_some();
            let num_docs = parsed.docs.len();
            let corpus = state.register_corpus(name, parsed.docs);
            Response::json(
                if replaced { 200 } else { 201 },
                to_string(&obj([
                    ("corpus", Value::from(name)),
                    ("generation", Value::from(corpus.generation() as usize)),
                    ("num_docs", Value::from(num_docs)),
                    ("replaced", Value::from(replaced)),
                ])),
            )
        }
        CorpusTail::Doc(name, id) => {
            let Some(corpus) = state.registry.get(name) else {
                return corpus_not_found(name);
            };
            let parsed = match DocPutRequest::parse(&body) {
                Ok(p) => p,
                Err(errors) => return invalid_fields_response(errors),
            };
            let seq = corpus.stage(DeltaOp::Upsert(Document::new(
                id,
                parsed.title,
                parsed.body,
            )));
            mutation_response(&corpus, id, seq, parsed.refresh)
        }
        CorpusTail::Docs(_) => error_envelope(405, "method_not_allowed", "method not allowed"),
    }
}

/// `POST /api/v1/corpora/{name}/docs` — add one strictly-new document.
fn corpora_post(state: &AppState, req: &Request, tail: &str) -> Response {
    let tail = match parse_corpus_tail(tail) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let CorpusTail::Docs(name) = tail else {
        return error_envelope(405, "method_not_allowed", "method not allowed");
    };
    let Some(corpus) = state.registry.get(name) else {
        return corpus_not_found(name);
    };
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match DocAddRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let doc_name = parsed.doc.name.clone();
    match corpus.stage_insert(parsed.doc) {
        Err(_) => error_envelope(
            409,
            "doc_exists",
            format!("a document named '{doc_name}' already exists in corpus '{name}'"),
        ),
        Ok(seq) => mutation_response(&corpus, &doc_name, seq, parsed.refresh),
    }
}

/// `DELETE /api/v1/corpora/{name}` (remove a corpus) and
/// `DELETE /api/v1/corpora/{name}/docs/{id}` (tombstone one document; the
/// body is optional and may carry `{"refresh": true}`).
fn corpora_delete(state: &AppState, req: &Request, tail: &str) -> Response {
    let tail = match parse_corpus_tail(tail) {
        Ok(t) => t,
        Err(r) => return r,
    };
    match tail {
        CorpusTail::Corpus(name) => {
            if name == DEFAULT_CORPUS {
                return error_envelope(
                    409,
                    "corpus_protected",
                    "the default corpus cannot be replaced or removed",
                );
            }
            let Some(corpus) = state.registry.get(name) else {
                return corpus_not_found(name);
            };
            let generation = corpus.generation();
            state.registry.remove(name);
            Response::json(
                200,
                to_string(&obj([
                    ("corpus", Value::from(name)),
                    ("generation", Value::from(generation as usize)),
                    ("status", Value::from("removed")),
                ])),
            )
        }
        CorpusTail::Doc(name, id) => {
            let Some(corpus) = state.registry.get(name) else {
                return corpus_not_found(name);
            };
            let refresh = match req.body_utf8() {
                Some(text) if !text.trim().is_empty() => {
                    let body = match json_body(req) {
                        Ok(v) => v,
                        Err(r) => return r,
                    };
                    match RefreshRequest::parse(&body) {
                        Ok(p) => p.refresh,
                        Err(errors) => return invalid_fields_response(errors),
                    }
                }
                _ => false,
            };
            if !corpus.doc_exists(id) {
                return error_envelope(
                    404,
                    "doc_not_found",
                    format!("no document named '{id}' in corpus '{name}'"),
                );
            }
            let seq = corpus.stage(DeltaOp::Delete(id.to_string()));
            mutation_response(&corpus, id, seq, refresh)
        }
        CorpusTail::Docs(_) => error_envelope(405, "method_not_allowed", "method not allowed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn demo_docs() -> Vec<Document> {
        vec![
            Document::new(
                "n1",
                "Outbreak news",
                "covid outbreak covid outbreak dominates the news cycle this week entirely",
            ),
            Document::new(
                "n2",
                "Quiet arrival",
                "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
                 for weeks before acting decisively.",
            ),
            Document::new(
                "n3",
                "Conspiracy corner",
                "The covid outbreak is a cover story. A secret microchip hides in every \
                 vaccine dose. The microchip tracks your movements constantly.",
            ),
            Document::new(
                "n4",
                "Copycat",
                "A secret microchip hides in every vaccine dose. The microchip tracks your \
                 movements constantly and secretly.",
            ),
            Document::new(
                "n5",
                "Harbor drills",
                "Outbreak drills continue at the harbor facility through the weekend shift.",
            ),
            Document::new(
                "n6",
                "Gardens",
                "The garden show opens to record spring crowds.",
            ),
        ]
    }

    fn state() -> &'static AppState {
        static STATE: OnceLock<&'static AppState> = OnceLock::new();
        STATE.get_or_init(|| AppState::leak(demo_docs(), EngineConfig::fast()))
    }

    fn post(path: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        };
        handle_request(state(), &req)
    }

    fn get(path: &str) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        handle_request(state(), &req)
    }

    fn body_json(resp: &Response) -> Value {
        parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    /// The error envelope's code, when the body is an envelope.
    fn error_code(resp: &Response) -> Option<String> {
        body_json(resp)
            .get("error")?
            .get("code")?
            .as_str()
            .map(String::from)
    }

    #[test]
    fn ui_page_served_at_root() {
        let resp = get("/");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/html; charset=utf-8");
        assert_eq!(resp.header("deprecation"), None, "the UI is not an alias");
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("CREDENCE"));
        assert!(html.contains("/explain/"), "UI drives the REST API");
        assert!(html.contains(API_PREFIX), "UI calls the versioned API");
    }

    #[test]
    fn ranker_choice_parses() {
        assert_eq!(RankerChoice::parse("bm25"), Some(RankerChoice::Bm25));
        assert_eq!(RankerChoice::parse("ql"), Some(RankerChoice::QlDirichlet));
        assert_eq!(RankerChoice::parse("rm3"), Some(RankerChoice::Rm3));
        assert_eq!(RankerChoice::parse("neural"), Some(RankerChoice::Neural));
        assert_eq!(RankerChoice::parse("zebra"), None);
    }

    #[test]
    fn state_with_alternative_ranker_serves() {
        let state =
            AppState::leak_with(demo_docs(), EngineConfig::fast(), RankerChoice::QlDirichlet);
        let req = Request {
            method: "POST".into(),
            path: "/api/v1/rank".into(),
            headers: Default::default(),
            body: br#"{"query": "covid outbreak", "k": 3}"#.to_vec(),
        };
        let resp = handle_request(state, &req);
        assert_eq!(resp.status, 200);
        assert_eq!(
            state.default_snapshot().engine().ranker().name(),
            "ql-dirichlet"
        );
    }

    #[test]
    fn health_and_404_and_405() {
        assert_eq!(get("/health").status, 200);
        assert_eq!(get("/api/v1/health").status, 200);
        let missing = get("/nope");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("not_found"));
        let req = Request {
            method: "DELETE".into(),
            path: "/rank".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        let resp = handle_request(state(), &req);
        assert_eq!(resp.status, 405);
        assert_eq!(error_code(&resp).as_deref(), Some("method_not_allowed"));
    }

    #[test]
    fn unversioned_paths_are_deprecated_aliases() {
        let alias = post("/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(alias.status, 200);
        assert_eq!(alias.header("deprecation"), Some("true"));
        assert_eq!(
            alias.header("link"),
            Some("</api/v1/rank>; rel=\"successor-version\"")
        );

        let canonical = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(canonical.status, 200);
        assert_eq!(canonical.header("deprecation"), None);
        assert_eq!(
            alias.body, canonical.body,
            "aliases serve identical payloads"
        );
    }

    #[test]
    fn alias_link_points_at_the_full_path() {
        let resp = get("/doc/2");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("link"),
            Some("</api/v1/doc/2>; rel=\"successor-version\"")
        );
        assert_eq!(get("/api/v1/doc/2").header("deprecation"), None);
    }

    #[test]
    fn corpus_and_doc_endpoints() {
        let resp = get("/corpus");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("num_docs").unwrap().as_u64(), Some(6));

        let resp = get("/api/v1/doc/2");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(v
            .get("body")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("microchip"));

        let missing = get("/doc/99");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("doc_not_found"));
        assert_eq!(get("/doc/zebra").status, 400);
    }

    #[test]
    fn rank_endpoint() {
        let resp = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let ranking = v.get("ranking").unwrap().as_array().unwrap();
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].get("rank").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rank_validation_errors() {
        assert_eq!(post("/rank", "not json").status, 400);
        assert_eq!(post("/rank", r#"{"k": 3}"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid"}"#).status, 400);
        assert_eq!(post("/rank", r#"[1,2]"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid", "k": -1}"#).status, 400);
    }

    #[test]
    fn invalid_fields_all_reported_in_the_envelope() {
        let resp = post("/api/v1/rank", r#"{"query": 7, "k": "three", "zz": 1}"#);
        assert_eq!(resp.status, 400);
        let v = body_json(&resp);
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("invalid_field"));
        assert!(err.get("field").unwrap().as_str().is_some());
        let details = err.get("details").unwrap().as_array().unwrap();
        assert_eq!(details.len(), 3, "query, k, and the unknown field");
        let fields: Vec<&str> = details
            .iter()
            .map(|d| d.get("field").unwrap().as_str().unwrap())
            .collect();
        assert!(fields.contains(&"query"));
        assert!(fields.contains(&"k"));
        assert!(fields.contains(&"zz"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let resp = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "deadlin_ms": 5}"#,
        );
        assert_eq!(resp.status, 400);
        let v = body_json(&resp);
        assert_eq!(
            v.get("error").unwrap().get("field").unwrap().as_str(),
            Some("deadlin_ms")
        );
    }

    #[test]
    fn sentence_removal_endpoint() {
        let resp = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert_eq!(explanations.len(), 1);
        let new_rank = explanations[0].get("new_rank").unwrap().as_u64().unwrap();
        assert!(new_rank > 3);
    }

    #[test]
    fn eval_knobs_change_nothing_but_validate() {
        // The evaluation engine is bit-deterministic: a request that forces
        // the threaded path must produce a byte-identical payload.
        let plain = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        let tuned = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "eval_threads": 3, "eval_parallel_threshold": 1}"#,
        );
        assert_eq!(tuned.status, 200);
        assert_eq!(plain.body, tuned.body);

        let bad = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "eval_threads": "many"}"#,
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn generous_budget_payload_matches_unbudgeted() {
        let plain = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        let budgeted = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "deadline_ms": 600000, "max_evals": 1000000}"#,
        );
        assert_eq!(budgeted.status, 200);
        assert_eq!(plain.body, budgeted.body);
    }

    #[test]
    fn expired_deadline_returns_well_formed_partial_result() {
        let resp = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "deadline_ms": 0}"#,
        );
        assert_eq!(resp.status, 200, "a tripped budget is not an error");
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("deadline"));
        assert_eq!(v.get("candidates_evaluated").unwrap().as_u64(), Some(0));
        assert!(v
            .get("explanations")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(v.get("old_rank").unwrap().as_u64().is_some());
        assert!(state().metrics().deadline_hits() > 0);
    }

    #[test]
    fn max_evals_cap_returns_exhausted_prefix() {
        let capped = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 5, "max_evals": 1}"#,
        );
        assert_eq!(capped.status, 200);
        let v = body_json(&capped);
        assert_eq!(v.get("status").unwrap().as_str(), Some("exhausted"));
        assert_eq!(v.get("candidates_evaluated").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_endpoint_exposes_the_registry() {
        // Generate at least one request beforehand so counters are nonzero.
        let _ = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        let resp = get("/metrics");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; charset=utf-8");
        assert_eq!(resp.header("deprecation"), None, "/metrics is canonical");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("credence_requests_total{endpoint=\"rank\",status=\"200\"}"));
        assert!(text.contains("credence_request_duration_seconds_bucket"));
        assert!(text.contains("credence_request_duration_quantile_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("credence_deadline_hits_total"));
        assert!(text.contains("credence_candidate_evals_total"));
        assert!(text.contains("credence_searches_total{status=\"complete\"}"));
        assert!(text.contains("credence_retrieval_docs_scored_total"));
        assert!(text.contains("credence_retrieval_docs_pruned_total"));
        assert!(text.contains("credence_retrieval_shards_used_total"));
        assert!(text.contains("credence_ranking_cache_hits_total"));
        assert!(text.contains("credence_ranking_cache_misses_total"));
    }

    #[test]
    fn metrics_reflect_retrieval_after_a_ranked_query() {
        // A fresh state so other tests' cached rankings don't interfere.
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let req = Request {
            method: "POST".into(),
            path: "/api/v1/rank".into(),
            headers: Default::default(),
            body: br#"{"query": "covid outbreak", "k": 3}"#.to_vec(),
        };
        assert_eq!(handle_request(state, &req).status, 200);
        let scrape = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        let text = String::from_utf8(handle_request(state, &scrape).body).unwrap();
        assert!(
            text.contains("credence_ranking_cache_misses_total 1"),
            "one ranking computed:\n{text}"
        );
        assert!(
            !text.contains("credence_retrieval_docs_scored_total 0"),
            "the rank request scored documents:\n{text}"
        );
    }

    #[test]
    fn rank_accepts_strategy_overrides() {
        let base = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        let v = body_json(&base);
        let expected = v.get("ranking").unwrap().as_array().unwrap().to_vec();
        for strategy in ["exhaustive", "pruned", "bmw", "sharded", "auto"] {
            let resp = post(
                "/api/v1/rank",
                &format!(
                    r#"{{"query": "covid outbreak", "k": 3, "search_strategy": "{strategy}", "search_shards": 2}}"#
                ),
            );
            assert_eq!(resp.status, 200, "{strategy}");
            let v = body_json(&resp);
            let ranking = v.get("ranking").unwrap().as_array().unwrap();
            assert_eq!(ranking.len(), expected.len(), "{strategy}");
            for (a, b) in ranking.iter().zip(&expected) {
                assert_eq!(
                    a.get("doc").unwrap().as_u64(),
                    b.get("doc").unwrap().as_u64()
                );
            }
        }
        let bad = post(
            "/api/v1/rank",
            r#"{"query": "covid", "k": 3, "search_strategy": "fastest"}"#,
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn sentence_removal_doc_errors() {
        let missing = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 99}"#,
        );
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("doc_not_found"));
        let irrelevant = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 5}"#,
        );
        assert_eq!(irrelevant.status, 422, "garden doc is not relevant");
        assert_eq!(error_code(&irrelevant).as_deref(), Some("doc_not_relevant"));
    }

    #[test]
    fn error_envelope_on_every_endpoint() {
        // Every POST endpoint answers field errors with the envelope.
        let cases = [
            ("/api/v1/rank", r#"{"k": 3}"#),
            ("/api/v1/explain/sentence-removal", r#"{"k": 3}"#),
            ("/api/v1/explain/query-augmentation", r#"{"k": 3}"#),
            ("/api/v1/explain/query-reduction", r#"{"k": 3}"#),
            ("/api/v1/explain/term-removal", r#"{"k": 3}"#),
            ("/api/v1/explain/doc2vec-nearest", r#"{"k": 3}"#),
            ("/api/v1/explain/cosine-sampled", r#"{"k": 3}"#),
            ("/api/v1/explain/nearest-to-text", r#"{"n": 3}"#),
            ("/api/v1/topics", r#"{"k": 3}"#),
            ("/api/v1/snippet", r#"{"doc": 1}"#),
            ("/api/v1/rerank", r#"{"query": "covid", "k": 3, "doc": 2}"#),
        ];
        for (path, body) in cases {
            let resp = post(path, body);
            assert_eq!(resp.status, 400, "{path}");
            let v = body_json(&resp);
            let err = v
                .get("error")
                .unwrap_or_else(|| panic!("{path}: no envelope"));
            assert_eq!(
                err.get("code").unwrap().as_str(),
                Some("invalid_field"),
                "{path}"
            );
            assert!(err.get("message").unwrap().as_str().is_some(), "{path}");
        }
    }

    #[test]
    fn job_endpoints_submit_poll_and_report() {
        let resp = post(
            "/api/v1/jobs",
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}}"#,
        );
        assert_eq!(resp.status, 202);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        let job_id = v.get("job_id").unwrap().as_str().unwrap().to_string();
        assert!(job_id.starts_with("job-"));

        let numeric: u64 = job_id.strip_prefix("job-").unwrap().parse().unwrap();
        assert_eq!(
            state()
                .jobs()
                .wait_terminal(numeric, std::time::Duration::from_secs(30)),
            Some(crate::jobs::JobState::Complete)
        );
        let polled = get(&format!("/api/v1/jobs/{job_id}"));
        assert_eq!(polled.status, 200);
        let v = body_json(&polled);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        assert_eq!(
            v.get("endpoint").unwrap().as_str(),
            Some("sentence-removal")
        );
        assert_eq!(v.get("result_status").unwrap().as_u64(), Some(200));
        // The stored result is the synchronous endpoint's payload.
        let sync = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(*v.get("result").unwrap(), body_json(&sync));
    }

    #[test]
    fn job_submission_validates_the_envelope() {
        let bad = post("/api/v1/jobs", r#"{"endpoint": "saliency", "request": {}}"#);
        assert_eq!(bad.status, 400);
        assert_eq!(error_code(&bad).as_deref(), Some("invalid_field"));

        let no_request = post("/api/v1/jobs", r#"{"endpoint": "term-removal"}"#);
        assert_eq!(no_request.status, 400);

        let nested = post(
            "/api/v1/jobs",
            r#"{"endpoint": "term-removal", "request": {"query": "covid", "k": "x", "doc": 1}}"#,
        );
        assert_eq!(nested.status, 400);
        let v = body_json(&nested);
        let details = v
            .get("error")
            .unwrap()
            .get("details")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(details
            .iter()
            .any(|d| d.get("field").unwrap().as_str() == Some("request.k")));
    }

    #[test]
    fn job_lookup_and_cancel_handle_bad_ids() {
        assert_eq!(get("/api/v1/jobs/zebra").status, 400);
        let missing = get("/api/v1/jobs/job-999999");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("job_not_found"));
        let req = Request {
            method: "DELETE".into(),
            path: "/api/v1/jobs/job-999999".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        assert_eq!(handle_request(state(), &req).status, 404);
    }

    #[test]
    fn query_augmentation_endpoint() {
        let resp = post(
            "/explain/query-augmentation",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 2, "threshold": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert!(!explanations.is_empty());
        for e in explanations {
            assert!(e.get("new_rank").unwrap().as_u64().unwrap() <= 1);
            assert!(e
                .get("augmented_query")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("covid outbreak"));
        }
    }

    #[test]
    fn query_reduction_endpoint() {
        let resp = post(
            "/explain/query-reduction",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        assert!(v.get("candidates_evaluated").unwrap().as_u64().is_some());
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        for e in explanations {
            assert!(!e
                .get("removed_terms")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn term_removal_endpoint() {
        let resp = post(
            "/api/v1/explain/term-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert!(!explanations.is_empty());
        let e = &explanations[0];
        assert!(!e
            .get("removed_terms")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(e.get("new_rank").unwrap().as_u64().unwrap() > 3);
    }

    #[test]
    fn instance_endpoints() {
        let resp = post(
            "/explain/doc2vec-nearest",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("explanations").unwrap().as_array().unwrap().len(), 1);

        let resp = post(
            "/explain/cosine-sampled",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "samples": 10}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("doc").unwrap().as_u64(), Some(3), "the copycat");
    }

    #[test]
    fn topics_endpoint() {
        let resp = post(
            "/topics",
            r#"{"query": "covid outbreak", "k": 3, "num_topics": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("topics").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rerank_endpoint_runs_figure5() {
        let resp = post(
            "/rerank",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2,
                "body": "The flu is a cover story. A secret chip hides in every dose."}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("valid").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("new_rank").unwrap().as_u64(), Some(4));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 4, "pool of k+1 documents");
        assert!(rows
            .iter()
            .any(|r| r.get("substituted").unwrap().as_bool() == Some(true)));
    }

    #[test]
    fn rerank_with_expired_deadline_fails_fast() {
        let resp = post(
            "/api/v1/rerank",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2,
                "body": "The flu is a cover story.", "deadline_ms": 0}"#,
        );
        assert_eq!(resp.status, 422, "the builder has no partial result");
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"));
    }

    #[test]
    fn snippet_endpoint() {
        let resp = post(
            "/snippet",
            r#"{"query": "covid outbreak", "doc": 2, "window": 8}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(!v.get("highlights").unwrap().as_array().unwrap().is_empty());
        assert!(
            v.get("snippet")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(
            post("/snippet", r#"{"query": "covid", "doc": 999}"#).status,
            404
        );
    }

    #[test]
    fn nearest_to_text_endpoint() {
        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "secret microchip in vaccine doses", "n": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("neighbors").unwrap().as_array().unwrap().len(), 2);

        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "covid outbreak tonight", "n": 2, "query": "covid outbreak", "k": 3}"#,
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn rerank_missing_fields() {
        assert_eq!(
            post("/rerank", r#"{"query": "covid", "k": 3, "doc": 2}"#).status,
            400
        );
    }

    /// Issue a request against a specific (non-shared) leaked state.
    fn request_on(state: &'static AppState, method: &str, path: &str, body: &str) -> Response {
        let req = Request {
            method: method.into(),
            path: path.into(),
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        };
        handle_request(state, &req)
    }

    #[test]
    fn api_index_reflects_the_route_table() {
        let resp = get("/api/v1");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("version").unwrap().as_str(), Some("v1"));
        let corpora = v.get("corpora").unwrap().as_array().unwrap();
        assert!(corpora.iter().any(|c| c.as_str() == Some(DEFAULT_CORPUS)));
        let routes = v.get("routes").unwrap().as_array().unwrap();
        let find = |method: &str, path: &str| {
            routes.iter().find(|r| {
                r.get("method").unwrap().as_str() == Some(method)
                    && r.get("path").unwrap().as_str() == Some(path)
            })
        };
        // Every table row shows up canonically and as its deprecated alias.
        for route in ROUTES {
            if route.versioned {
                let canonical = find(route.method, &format!("{API_PREFIX}{}", route.path))
                    .unwrap_or_else(|| panic!("missing canonical row for {}", route.path));
                assert_eq!(canonical.get("deprecated").unwrap().as_bool(), Some(false));
                let alias = find(route.method, route.path)
                    .unwrap_or_else(|| panic!("missing alias row for {}", route.path));
                assert_eq!(alias.get("deprecated").unwrap().as_bool(), Some(true));
                assert_eq!(
                    alias.get("successor").unwrap().as_str(),
                    Some(format!("{API_PREFIX}{}", route.path).as_str())
                );
            } else {
                assert!(find(route.method, route.path).is_some());
            }
        }
        // The discovery endpoint lists itself.
        assert!(find("GET", API_PREFIX).is_some());
        // Non-GET on the index is a method error, not a UI fallthrough.
        let req = Request {
            method: "POST".into(),
            path: "/api/v1".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        assert_eq!(handle_request(state(), &req).status, 405);
    }

    #[test]
    fn every_2xx_body_names_its_corpus_and_generation() {
        let resp = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("corpus").unwrap().as_str(), Some(DEFAULT_CORPUS));
        assert_eq!(v.get("generation").unwrap().as_u64(), Some(0));

        let resp = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("corpus").unwrap().as_str(), Some(DEFAULT_CORPUS));
        assert_eq!(v.get("generation").unwrap().as_u64(), Some(0));

        for path in ["/api/v1/corpus", "/api/v1/doc/1"] {
            let v = body_json(&get(path));
            assert_eq!(
                v.get("corpus").unwrap().as_str(),
                Some(DEFAULT_CORPUS),
                "{path}"
            );
            assert_eq!(v.get("generation").unwrap().as_u64(), Some(0), "{path}");
        }
    }

    #[test]
    fn explicit_corpus_and_generation_fields_resolve() {
        let ok = post(
            "/api/v1/rank",
            r#"{"query": "covid outbreak", "k": 3, "corpus": "default", "generation": 0}"#,
        );
        assert_eq!(ok.status, 200);
        let missing = post(
            "/api/v1/rank",
            r#"{"query": "covid outbreak", "k": 3, "corpus": "nope"}"#,
        );
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("corpus_not_found"));
        let gone = post(
            "/api/v1/rank",
            r#"{"query": "covid outbreak", "k": 3, "generation": 99}"#,
        );
        assert_eq!(gone.status, 410);
        assert_eq!(error_code(&gone).as_deref(), Some("generation_gone"));
    }

    #[test]
    fn corpus_lifecycle_register_mutate_and_remove() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let put_body = r#"{"docs": [
            {"name": "x1", "title": "One", "body": "alpha beta gamma"},
            {"name": "x2", "title": "Two", "body": "alpha delta epsilon"}
        ]}"#;
        let created = request_on(state, "PUT", "/api/v1/corpora/extra", put_body);
        assert_eq!(created.status, 201);
        let v = body_json(&created);
        assert_eq!(v.get("corpus").unwrap().as_str(), Some("extra"));
        assert_eq!(v.get("replaced").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("num_docs").unwrap().as_u64(), Some(2));

        // Hot-swap answers 200 with replaced=true.
        let swapped = request_on(state, "PUT", "/api/v1/corpora/extra", put_body);
        assert_eq!(swapped.status, 200);
        assert_eq!(
            body_json(&swapped).get("replaced").unwrap().as_bool(),
            Some(true)
        );

        // The listing sees both corpora.
        let list = body_json(&request_on(state, "GET", "/api/v1/corpora", ""));
        let names: Vec<String> = list
            .get("corpora")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.get("corpus").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["default".to_string(), "extra".to_string()]);

        // Requests route to the named corpus.
        let ranked = request_on(
            state,
            "POST",
            "/api/v1/rank",
            r#"{"query": "alpha", "k": 2, "corpus": "extra"}"#,
        );
        assert_eq!(ranked.status, 200);
        assert_eq!(
            body_json(&ranked).get("corpus").unwrap().as_str(),
            Some("extra")
        );

        // A refreshed insert bumps the generation and becomes visible.
        let added = request_on(
            state,
            "POST",
            "/api/v1/corpora/extra/docs",
            r#"{"name": "x3", "title": "Three", "body": "alpha zeta", "refresh": true}"#,
        );
        assert_eq!(added.status, 200, "{:?}", std::str::from_utf8(&added.body));
        let v = body_json(&added);
        assert_eq!(v.get("status").unwrap().as_str(), Some("applied"));
        assert!(v.get("generation").unwrap().as_u64().unwrap() >= 1);
        let docs = body_json(&request_on(state, "GET", "/api/v1/corpora/extra/docs", ""));
        assert_eq!(docs.get("num_docs").unwrap().as_u64(), Some(3));

        // Duplicate insert is a conflict; upsert and delete are not.
        let dup = request_on(
            state,
            "POST",
            "/api/v1/corpora/extra/docs",
            r#"{"name": "x3", "body": "again"}"#,
        );
        assert_eq!(dup.status, 409);
        assert_eq!(error_code(&dup).as_deref(), Some("doc_exists"));
        let upsert = request_on(
            state,
            "PUT",
            "/api/v1/corpora/extra/docs/x3",
            r#"{"title": "Three v2", "body": "alpha zeta eta", "refresh": true}"#,
        );
        assert_eq!(upsert.status, 200);
        let fetched = body_json(&request_on(
            state,
            "GET",
            "/api/v1/corpora/extra/docs/x3",
            "",
        ));
        assert_eq!(fetched.get("title").unwrap().as_str(), Some("Three v2"));
        let deleted = request_on(
            state,
            "DELETE",
            "/api/v1/corpora/extra/docs/x3",
            r#"{"refresh": true}"#,
        );
        assert_eq!(deleted.status, 200);
        let docs = body_json(&request_on(state, "GET", "/api/v1/corpora/extra/docs", ""));
        assert_eq!(docs.get("num_docs").unwrap().as_u64(), Some(2));

        // The default corpus is protected; removal detaches the rest.
        for method in ["PUT", "DELETE"] {
            let resp = request_on(state, method, "/api/v1/corpora/default", r#"{"docs": []}"#);
            assert_eq!(resp.status, 409, "{method}");
            assert_eq!(error_code(&resp).as_deref(), Some("corpus_protected"));
        }
        let removed = request_on(state, "DELETE", "/api/v1/corpora/extra", "");
        assert_eq!(removed.status, 200);
        let gone = request_on(
            state,
            "POST",
            "/api/v1/rank",
            r#"{"query": "alpha", "k": 2, "corpus": "extra"}"#,
        );
        assert_eq!(gone.status, 404);
        assert_eq!(error_code(&gone).as_deref(), Some("corpus_not_found"));
    }

    #[test]
    fn pinned_generation_still_serves_after_mutation() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let pin = state.default_snapshot();
        let seq = state
            .registry()
            .get(DEFAULT_CORPUS)
            .unwrap()
            .stage(DeltaOp::Delete("n1".to_string()));
        assert!(state
            .registry()
            .get(DEFAULT_CORPUS)
            .unwrap()
            .wait_for_seq(seq, Duration::from_secs(10)));
        // The live generation advanced past the delete...
        let live = body_json(&request_on(
            state,
            "POST",
            "/api/v1/rank",
            r#"{"query": "covid outbreak", "k": 6}"#,
        ));
        assert!(live.get("generation").unwrap().as_u64().unwrap() >= 1);
        // ...but the pinned one still answers with the original corpus.
        let pinned = body_json(&request_on(
            state,
            "POST",
            "/api/v1/rank",
            r#"{"query": "covid outbreak", "k": 6, "generation": 0}"#,
        ));
        assert_eq!(pinned.get("generation").unwrap().as_u64(), Some(0));
        let pinned_docs = pinned.get("ranking").unwrap().as_array().unwrap().len();
        let live_docs = live.get("ranking").unwrap().as_array().unwrap().len();
        assert!(pinned_docs > live_docs, "{pinned_docs} vs {live_docs}");
        drop(pin);
    }

    #[test]
    fn metrics_expose_corpus_families() {
        let resp = get("/metrics");
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("credence_corpus_count"), "{text}");
        assert!(
            text.contains("credence_corpus_generation{corpus=\"default\"}"),
            "{text}"
        );
        assert!(text.contains("credence_corpus_docs{corpus=\"default\"}"));
        assert!(text.contains("credence_corpus_pending_ops{corpus=\"default\"}"));
        assert!(text.contains("credence_corpus_merges_total{corpus=\"default\"}"));
    }

    /// The error-envelope audit (table-driven): every error path answers
    /// `{"error": {"code", "message"}}` with its documented status + code.
    #[test]
    fn error_envelopes_are_uniform_across_every_path() {
        let cases: Vec<(&str, Response, u16, &str)> = vec![
            ("unknown path", get("/nope"), 404, "not_found"),
            ("bad json", post("/rank", "{nope"), 400, "invalid_json"),
            (
                "non-object body",
                post("/rank", "[1, 2]"),
                400,
                "invalid_request",
            ),
            (
                "field validation",
                post("/rank", r#"{"query": "covid", "k": "three"}"#),
                400,
                "invalid_field",
            ),
            (
                "unknown corpus",
                post("/rank", r#"{"query": "covid", "k": 2, "corpus": "nope"}"#),
                404,
                "corpus_not_found",
            ),
            (
                "dead generation",
                post("/rank", r#"{"query": "covid", "k": 2, "generation": 99}"#),
                410,
                "generation_gone",
            ),
            (
                "missing doc",
                post(
                    "/explain/sentence-removal",
                    r#"{"query": "covid", "k": 2, "doc": 999}"#,
                ),
                404,
                "doc_not_found",
            ),
            (
                "protected corpus",
                request_on(state(), "PUT", "/api/v1/corpora/default", r#"{"docs": []}"#),
                409,
                "corpus_protected",
            ),
            (
                "mutating an unknown corpus",
                request_on(
                    state(),
                    "POST",
                    "/api/v1/corpora/nope/docs",
                    r#"{"name": "d", "body": "b"}"#,
                ),
                404,
                "corpus_not_found",
            ),
            (
                "deleting an unknown doc",
                request_on(state(), "DELETE", "/api/v1/corpora/default/docs/zzz", ""),
                404,
                "doc_not_found",
            ),
            (
                "malformed job id",
                get("/api/v1/jobs/zzz"),
                400,
                "invalid_field",
            ),
            (
                "unknown job",
                get("/api/v1/jobs/job-999"),
                404,
                "job_not_found",
            ),
            (
                "method mismatch",
                request_on(state(), "DELETE", "/api/v1/rank", ""),
                405,
                "method_not_allowed",
            ),
        ];
        for (name, resp, status, code) in cases {
            assert_eq!(resp.status, status, "{name}");
            assert_eq!(resp.content_type, "application/json", "{name}");
            let v = body_json(&resp);
            let err = v
                .get("error")
                .unwrap_or_else(|| panic!("{name}: no envelope"));
            assert_eq!(err.get("code").unwrap().as_str(), Some(code), "{name}");
            assert!(
                err.get("message")
                    .unwrap()
                    .as_str()
                    .is_some_and(|m| !m.is_empty()),
                "{name}: message missing"
            );
        }
    }

    #[test]
    fn explain_cache_hit_serves_identical_bytes() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let body = r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#;
        let baseline = request_on(
            state,
            "POST",
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "explain_cache_bypass": true}"#,
        );
        assert_eq!(baseline.status, 200);
        assert_eq!(state.explain_cache().len(), 0, "bypass does not populate");

        let first = request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        let second = request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        assert_eq!(state.explain_cache().hits(), 1);
        assert_eq!(first.body, second.body, "hit is byte-identical");
        assert_eq!(
            first.body, baseline.body,
            "cached payload matches the uncached path"
        );

        // Field order and spelled-out defaults canonicalize to the same key.
        let reordered = request_on(
            state,
            "POST",
            "/api/v1/explain/sentence-removal",
            r#"{"n": 1, "doc": 2, "k": 3, "query": "covid outbreak", "corpus": "default"}"#,
        );
        assert_eq!(state.explain_cache().hits(), 2);
        assert_eq!(reordered.body, first.body);
    }

    #[test]
    fn explain_cache_covers_all_four_explainers() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let cases = [
            (
                "/api/v1/explain/sentence-removal",
                r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
            ),
            (
                "/api/v1/explain/query-augmentation",
                r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "threshold": 1}"#,
            ),
            (
                "/api/v1/explain/query-reduction",
                r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
            ),
            (
                "/api/v1/explain/term-removal",
                r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
            ),
        ];
        for (i, (path, body)) in cases.iter().enumerate() {
            let first = request_on(state, "POST", path, body);
            assert_eq!(first.status, 200, "{path}");
            let again = request_on(state, "POST", path, body);
            assert_eq!(again.body, first.body, "{path}");
            assert_eq!(state.explain_cache().hits(), i as u64 + 1, "{path}");
        }
        assert_eq!(state.explain_cache().len(), 4, "one entry per endpoint");
    }

    #[test]
    fn generation_publish_invalidates_explain_cache_keys() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let _pin = state.default_snapshot(); // keep generation 0 resolvable
        let body = r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#;
        let gen0 = request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        assert_eq!(gen0.status, 200);
        assert_eq!(state.explain_cache().misses(), 1);

        // Publish a new generation (delete an unrelated doc).
        let corpus = state.registry().get(DEFAULT_CORPUS).unwrap();
        let seq = corpus.stage(DeltaOp::Delete("n6".to_string()));
        assert!(corpus.wait_for_seq(seq, Duration::from_secs(10)));

        let gen1 = request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        assert_eq!(gen1.status, 200);
        assert_eq!(
            state.explain_cache().misses(),
            2,
            "the new generation's key misses"
        );
        assert_eq!(state.explain_cache().hits(), 0);
        // The gen-0 entry still serves pinned requests.
        let pinned = request_on(
            state,
            "POST",
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "generation": 0}"#,
        );
        assert_eq!(state.explain_cache().hits(), 1);
        assert_eq!(pinned.body, gen0.body);
    }

    #[test]
    fn finished_job_satisfies_a_matching_synchronous_request() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let submit = request_on(
            state,
            "POST",
            "/api/v1/jobs",
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}}"#,
        );
        assert_eq!(submit.status, 202);
        let id = body_json(&submit)
            .get("job_id")
            .unwrap()
            .as_str()
            .unwrap()
            .strip_prefix("job-")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            state.jobs().wait_terminal(id, Duration::from_secs(30)),
            Some(crate::jobs::JobState::Complete)
        );
        let misses_after_job = state.explain_cache().misses();
        assert!(misses_after_job >= 1, "the job populated the cache");

        let sync = request_on(
            state,
            "POST",
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(sync.status, 200);
        assert_eq!(
            state.explain_cache().misses(),
            misses_after_job,
            "the synchronous request did not re-run the search"
        );
        assert_eq!(state.explain_cache().hits(), 1);
        // And the payload is the job's payload, bit for bit.
        let job_view = state.jobs().get(id, state.metrics()).unwrap();
        let (status, payload) = job_view.result.unwrap();
        assert_eq!(status, 200);
        assert_eq!(payload, body_json(&sync));
    }

    #[test]
    fn explain_cache_families_render_in_metrics() {
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let body = r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#;
        request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        request_on(state, "POST", "/api/v1/explain/sentence-removal", body);
        let scrape = request_on(state, "GET", "/metrics", "");
        let text = String::from_utf8(scrape.body).unwrap();
        for (family, kind) in [
            ("credence_explain_cache_hits_total", "counter"),
            ("credence_explain_cache_misses_total", "counter"),
            ("credence_explain_cache_coalesced_total", "counter"),
            ("credence_explain_cache_evictions_total", "counter"),
            ("credence_explain_cache_size", "gauge"),
            ("credence_ranking_cache_size", "gauge"),
            ("credence_ranking_cache_evictions_total", "counter"),
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} {kind}")),
                "{family}"
            );
        }
        assert!(text.contains("credence_explain_cache_hits_total 1"));
        assert!(text.contains("credence_explain_cache_misses_total 1"));
        assert!(text.contains("credence_explain_cache_size 1"));
    }
}
