//! Endpoint handlers: JSON in, JSON out, engine in the middle.
//!
//! Routing is table-driven: every endpoint registers once in [`ROUTES`]
//! with its canonical `/api/v1/...` path, and the dispatcher also serves
//! each API route at its historical unversioned path as a **deprecated
//! alias** that answers with a `Deprecation: true` header and a `Link` to
//! the successor. Request bodies parse through the typed structs in
//! [`crate::requests`] (all invalid fields reported at once, unknown
//! fields rejected), errors serialise through one envelope —
//! `{"error": {"code", "message", ...}}` with the stable codes from
//! [`ExplainError::code`] — and every request is counted and timed in the
//! [`Metrics`] registry exposed at `GET /metrics`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use credence_core::{
    CredenceEngine, EngineConfig, ExplainError, QueryAugmentationConfig, QueryReductionConfig,
    SentenceRemovalConfig, TermRemovalConfig,
};
use credence_index::{Bm25Params, DocId, Document, InvertedIndex};
use credence_json::{obj, parse, to_string, Value};
use credence_rank::{
    Bm25Ranker, NeuralSimConfig, NeuralSimRanker, PoolEntry, QlSmoothing, QueryLikelihoodRanker,
    Ranker, Rm3Config, Rm3Ranker,
};
use credence_text::Analyzer;

use crate::http::{Request, Response};
use crate::jobs::{CancelOutcome, JobRunner, JobView, JobsConfig, SubmitOutcome};
use crate::metrics::Metrics;
use crate::requests::{
    CosineSampledRequest, Doc2VecNearestRequest, FieldError, JobRequest, JobSubmitRequest,
    NearestToTextRequest, QueryAugmentationRequest, QueryReductionRequest, RankRequest,
    RerankRequest, SentenceRemovalRequest, SnippetRequest, TermRemovalRequest, TopicsRequest,
};

/// The API version prefix canonical routes live under.
pub const API_PREFIX: &str = "/api/v1";

/// Everything a request handler needs, with `'static` lifetime so worker
/// threads can share it. Construct via [`AppState::leak`], which builds the
/// index and ranker once and leaks them (a deliberate one-time allocation
/// for the lifetime of the process, exactly like the original service
/// loading its Lucene index at startup).
pub struct AppState {
    engine: CredenceEngine<'static>,
    metrics: Metrics,
    jobs: JobRunner,
    log_requests: AtomicBool,
}

/// Which ranking model the server explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankerChoice {
    /// BM25 with Anserini defaults.
    #[default]
    Bm25,
    /// Query likelihood with Dirichlet smoothing.
    QlDirichlet,
    /// Query likelihood with Jelinek-Mercer smoothing.
    QlJm,
    /// BM25 + RM3 pseudo-relevance feedback.
    Rm3,
    /// The neural-sim hybrid (trains embeddings at startup).
    Neural,
}

impl RankerChoice {
    /// Parse a CLI-style name (`bm25`, `ql`, `ql-jm`, `rm3`, `neural`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "bm25" => Some(Self::Bm25),
            "ql" | "ql-dirichlet" => Some(Self::QlDirichlet),
            "ql-jm" => Some(Self::QlJm),
            "rm3" | "bm25+rm3" => Some(Self::Rm3),
            "neural" | "neural-sim" => Some(Self::Neural),
            _ => None,
        }
    }
}

impl AppState {
    /// Build the full backend over `docs` and leak it to `'static`.
    pub fn leak(docs: Vec<Document>, config: EngineConfig) -> &'static AppState {
        Self::leak_with(docs, config, RankerChoice::Bm25)
    }

    /// Build the backend with an explicit ranking model.
    pub fn leak_with(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
    ) -> &'static AppState {
        Self::leak_jobs(docs, config, choice, JobsConfig::default())
    }

    /// Build the backend with explicit ranking model and job-subsystem
    /// sizing, and start the job worker pool.
    pub fn leak_jobs(
        docs: Vec<Document>,
        config: EngineConfig,
        choice: RankerChoice,
        jobs: JobsConfig,
    ) -> &'static AppState {
        let index: &'static InvertedIndex =
            Box::leak(Box::new(InvertedIndex::build(docs, Analyzer::english())));
        let ranker: &'static dyn Ranker = match choice {
            RankerChoice::Bm25 => {
                Box::leak(Box::new(Bm25Ranker::new(index, Bm25Params::default())))
            }
            RankerChoice::QlDirichlet => Box::leak(Box::new(QueryLikelihoodRanker::new(
                index,
                QlSmoothing::default(),
            ))),
            RankerChoice::QlJm => Box::leak(Box::new(QueryLikelihoodRanker::new(
                index,
                QlSmoothing::JelinekMercer { lambda: 0.5 },
            ))),
            RankerChoice::Rm3 => Box::leak(Box::new(Rm3Ranker::new(index, Rm3Config::default()))),
            RankerChoice::Neural => Box::leak(Box::new(NeuralSimRanker::train(
                index,
                NeuralSimConfig::default(),
            ))),
        };
        let engine = CredenceEngine::new(ranker, config);
        let state: &'static AppState = Box::leak(Box::new(AppState {
            engine,
            metrics: Metrics::new(ENDPOINT_LABELS),
            jobs: JobRunner::new(jobs),
            log_requests: AtomicBool::new(false),
        }));
        state.jobs.start(state);
        state
    }

    /// The engine, for in-process use in tests and experiments.
    pub fn engine(&self) -> &CredenceEngine<'static> {
        &self.engine
    }

    /// The observability registry (served at `GET /metrics`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The async explanation job subsystem.
    pub fn jobs(&self) -> &JobRunner {
        &self.jobs
    }

    /// Emit one structured log line per request to stderr (off by default
    /// so in-process tests stay quiet; `credence-serve` turns it on).
    pub fn enable_request_logging(&self) {
        self.log_requests.store(true, Ordering::Relaxed);
    }
}

impl crate::server::App for AppState {
    fn handle(&self, request: &Request) -> Response {
        handle_request(self, request)
    }

    fn record_rejected(&self, status: u16) {
        self.metrics.record_request("other", status, 0);
    }

    fn begin_shutdown(&self) {
        self.jobs.begin_shutdown(&self.metrics);
    }

    fn finish_shutdown(&self) {
        self.jobs.join_workers();
    }
}

/// Endpoint labels for the metrics registry — one per route plus the
/// `"other"` catch-all (unmatched paths, bad methods).
const ENDPOINT_LABELS: &[&str] = &[
    "ui",
    "health",
    "metrics",
    "corpus",
    "doc",
    "rank",
    "sentence_removal",
    "query_augmentation",
    "query_reduction",
    "term_removal",
    "doc2vec_nearest",
    "cosine_sampled",
    "nearest_to_text",
    "topics",
    "snippet",
    "rerank",
    "jobs",
    "other",
];

/// One row of the route table.
struct Route {
    method: &'static str,
    /// Unversioned path (the canonical form prepends [`API_PREFIX`]).
    path: &'static str,
    /// Match `path` as a prefix, passing the remainder to the handler.
    prefix: bool,
    /// API routes are canonical under `/api/v1`; their unversioned form is
    /// a deprecated alias. Infrastructure routes (UI, `/metrics`) are
    /// canonical unversioned.
    versioned: bool,
    /// Metrics label.
    endpoint: &'static str,
    handler: fn(&AppState, &Request, &str) -> Response,
}

/// The single route table: every handler registers exactly once and is
/// reachable both under [`API_PREFIX`] and at its unversioned alias.
const ROUTES: &[Route] = &[
    Route {
        method: "GET",
        path: "/",
        prefix: false,
        versioned: false,
        endpoint: "ui",
        handler: ui,
    },
    Route {
        method: "GET",
        path: "/index.html",
        prefix: false,
        versioned: false,
        endpoint: "ui",
        handler: ui,
    },
    Route {
        method: "GET",
        path: "/health",
        prefix: false,
        versioned: true,
        endpoint: "health",
        handler: health,
    },
    Route {
        method: "GET",
        path: "/metrics",
        prefix: false,
        versioned: false,
        endpoint: "metrics",
        handler: metrics_text,
    },
    Route {
        method: "GET",
        path: "/corpus",
        prefix: false,
        versioned: true,
        endpoint: "corpus",
        handler: corpus,
    },
    Route {
        method: "GET",
        path: "/doc/",
        prefix: true,
        versioned: true,
        endpoint: "doc",
        handler: doc,
    },
    Route {
        method: "POST",
        path: "/rank",
        prefix: false,
        versioned: true,
        endpoint: "rank",
        handler: rank,
    },
    Route {
        method: "POST",
        path: "/explain/sentence-removal",
        prefix: false,
        versioned: true,
        endpoint: "sentence_removal",
        handler: sentence_removal,
    },
    Route {
        method: "POST",
        path: "/explain/query-augmentation",
        prefix: false,
        versioned: true,
        endpoint: "query_augmentation",
        handler: query_augmentation,
    },
    Route {
        method: "POST",
        path: "/explain/query-reduction",
        prefix: false,
        versioned: true,
        endpoint: "query_reduction",
        handler: query_reduction,
    },
    Route {
        method: "POST",
        path: "/explain/term-removal",
        prefix: false,
        versioned: true,
        endpoint: "term_removal",
        handler: term_removal,
    },
    Route {
        method: "POST",
        path: "/explain/doc2vec-nearest",
        prefix: false,
        versioned: true,
        endpoint: "doc2vec_nearest",
        handler: doc2vec_nearest,
    },
    Route {
        method: "POST",
        path: "/explain/cosine-sampled",
        prefix: false,
        versioned: true,
        endpoint: "cosine_sampled",
        handler: cosine_sampled,
    },
    Route {
        method: "POST",
        path: "/explain/nearest-to-text",
        prefix: false,
        versioned: true,
        endpoint: "nearest_to_text",
        handler: nearest_to_text,
    },
    Route {
        method: "POST",
        path: "/topics",
        prefix: false,
        versioned: true,
        endpoint: "topics",
        handler: topics,
    },
    Route {
        method: "POST",
        path: "/snippet",
        prefix: false,
        versioned: true,
        endpoint: "snippet",
        handler: snippet,
    },
    Route {
        method: "POST",
        path: "/rerank",
        prefix: false,
        versioned: true,
        endpoint: "rerank",
        handler: rerank,
    },
    Route {
        method: "POST",
        path: "/jobs",
        prefix: false,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_submit,
    },
    Route {
        method: "GET",
        path: "/jobs/",
        prefix: true,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_get,
    },
    Route {
        method: "DELETE",
        path: "/jobs/",
        prefix: true,
        versioned: true,
        endpoint: "jobs",
        handler: jobs_cancel,
    },
];

/// Build the unified error envelope:
/// `{"error": {"code": "...", "message": "..."}}`.
pub(crate) fn error_envelope(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(
        status,
        to_string(&obj([(
            "error",
            obj([
                ("code", Value::from(code)),
                ("message", Value::from(message.into())),
            ]),
        )])),
    )
}

/// The envelope for field-validation failures: code `invalid_field`, the
/// first offending field in `field`, and every failure in `details`.
pub(crate) fn invalid_fields_response(errors: Vec<FieldError>) -> Response {
    debug_assert!(!errors.is_empty());
    let message = errors
        .iter()
        .map(|e| format!("'{}' {}", e.field, e.message))
        .collect::<Vec<_>>()
        .join("; ");
    let details: Vec<Value> = errors
        .iter()
        .map(|e| {
            obj([
                ("field", Value::from(e.field.as_str())),
                ("message", Value::from(e.message.as_str())),
            ])
        })
        .collect();
    Response::json(
        400,
        to_string(&obj([(
            "error",
            obj([
                ("code", Value::from("invalid_field")),
                ("message", Value::from(message)),
                ("field", Value::from(errors[0].field.as_str())),
                ("details", Value::Array(details)),
            ]),
        )])),
    )
}

/// Map an [`ExplainError`] to its envelope — the single place the REST
/// status and stable code for every core error are decided.
fn explain_error_response(err: ExplainError) -> Response {
    let status = match err {
        ExplainError::DocNotFound(_) => 404,
        _ => 422,
    };
    error_envelope(status, err.code(), err.to_string())
}

/// Parse the request body as a JSON object.
pub(crate) fn json_body(req: &Request) -> Result<Value, Response> {
    let text = req
        .body_utf8()
        .ok_or_else(|| error_envelope(400, "invalid_json", "body is not UTF-8"))?;
    let value = parse(text)
        .map_err(|e| error_envelope(400, "invalid_json", format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(error_envelope(
            400,
            "invalid_request",
            "body must be a JSON object",
        ));
    }
    Ok(value)
}

fn pool_entry_json(row: &PoolEntry) -> Value {
    obj([
        ("doc", Value::from(row.doc.0)),
        ("score", Value::from(row.score)),
        ("new_rank", Value::from(row.new_rank)),
        ("old_rank", Value::from(row.old_rank)),
        ("movement", Value::from(row.movement() as f64)),
        ("substituted", Value::from(row.substituted)),
    ])
}

/// Strip the version prefix: `/api/v1/rank` → (`/rank`, true).
pub(crate) fn strip_version(path: &str) -> (&str, bool) {
    match path.strip_prefix(API_PREFIX) {
        Some("") => ("/", true),
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (path, false),
    }
}

/// Route one request through the table. Returns the endpoint label (for
/// metrics) alongside the response.
fn dispatch(state: &AppState, req: &Request) -> (&'static str, Response) {
    let (path, versioned) = strip_version(&req.path);
    let mut path_matched = false;
    for route in ROUTES {
        let tail = if route.prefix {
            path.strip_prefix(route.path)
        } else if path == route.path {
            Some("")
        } else {
            None
        };
        let Some(tail) = tail else { continue };
        path_matched = true;
        if route.method != req.method {
            continue;
        }
        let mut resp = (route.handler)(state, req, tail);
        if route.versioned && !versioned {
            resp = resp.with_header("deprecation", "true").with_header(
                "link",
                format!("<{API_PREFIX}{}>; rel=\"successor-version\"", req.path),
            );
        }
        return (route.endpoint, resp);
    }
    if path_matched {
        (
            "other",
            error_envelope(405, "method_not_allowed", "method not allowed"),
        )
    } else {
        (
            "other",
            error_envelope(404, "not_found", "no such endpoint"),
        )
    }
}

/// Route one request to its handler, recording metrics and (when enabled)
/// one structured log line carrying the request id.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    let request_id = state.metrics.next_request_id();
    let start = Instant::now();
    let (endpoint, resp) = dispatch(state, req);
    let duration_us = start.elapsed().as_micros() as u64;
    state
        .metrics
        .record_request(endpoint, resp.status, duration_us);
    if state.log_requests.load(Ordering::Relaxed) {
        eprintln!(
            "{}",
            to_string(&obj([
                ("request_id", Value::from(request_id as usize)),
                ("method", Value::from(req.method.as_str())),
                ("path", Value::from(req.path.as_str())),
                ("endpoint", Value::from(endpoint)),
                ("status", Value::from(resp.status as usize)),
                ("duration_us", Value::from(duration_us as usize)),
            ]))
        );
    }
    resp
}

fn ui(_state: &AppState, _req: &Request, _tail: &str) -> Response {
    Response::html(200, include_str!("ui.html").as_bytes().to_vec())
}

fn health(_state: &AppState, _req: &Request, _tail: &str) -> Response {
    Response::json(200, to_string(&obj([("status", Value::from("ok"))])))
}

fn metrics_text(state: &AppState, _req: &Request, _tail: &str) -> Response {
    // Pull the engine's cumulative retrieval/cache counters into the
    // registry so every scrape sees the latest totals.
    state
        .metrics
        .record_retrieval(state.engine.retrieval_stats());
    Response::text(200, state.metrics.render())
}

fn corpus(state: &AppState, _req: &Request, _tail: &str) -> Response {
    let index = state.engine.ranker().index();
    let docs: Vec<Value> = index
        .documents()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            obj([
                ("doc", Value::from(i)),
                ("name", Value::from(d.name.as_str())),
                ("title", Value::from(d.title.as_str())),
            ])
        })
        .collect();
    Response::json(
        200,
        to_string(&obj([
            ("num_docs", Value::from(index.num_docs())),
            ("docs", Value::Array(docs)),
        ])),
    )
}

fn doc(state: &AppState, _req: &Request, id: &str) -> Response {
    let Ok(id) = id.parse::<u32>() else {
        return error_envelope(400, "invalid_field", "document id must be an integer");
    };
    let index = state.engine.ranker().index();
    match index.document(DocId(id)) {
        None => error_envelope(404, "doc_not_found", format!("document {id} not found")),
        Some(d) => Response::json(
            200,
            to_string(&obj([
                ("doc", Value::from(id)),
                ("name", Value::from(d.name.as_str())),
                ("title", Value::from(d.title.as_str())),
                ("body", Value::from(d.body.as_str())),
            ])),
        ),
    }
}

fn rank(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match RankRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let mut opts = state.engine.config().retrieval;
    if let Some(strategy) = parsed.search_strategy {
        opts.strategy = strategy;
    }
    if let Some(shards) = parsed.search_shards {
        opts.shards = shards;
    }
    opts.partition = parsed.partition;
    let rows: Vec<Value> = state
        .engine
        .rank_with_options(&parsed.query, parsed.k, &opts)
        .into_iter()
        .map(|r| {
            obj([
                ("doc", Value::from(r.doc.0)),
                ("rank", Value::from(r.rank)),
                ("score", Value::from(r.score)),
                ("name", Value::from(r.name)),
                ("title", Value::from(r.title)),
            ])
        })
        .collect();
    Response::json(200, to_string(&obj([("ranking", Value::Array(rows))])))
}

fn sentence_removal(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match SentenceRemovalRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    run_sentence_removal(state, &parsed)
}

/// Execute a parsed sentence-removal request. Shared verbatim by the
/// synchronous endpoint and the job workers, so both produce the same
/// payload for the same request.
pub(crate) fn run_sentence_removal(state: &AppState, parsed: &SentenceRemovalRequest) -> Response {
    let config = SentenceRemovalConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match state
        .engine
        .sentence_removal(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_sentences",
                            Value::Array(e.removed.iter().map(|&i| Value::from(i)).collect()),
                        ),
                        (
                            "removed_text",
                            Value::Array(
                                e.removed_text
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("perturbed_body", Value::from(e.perturbed_body.as_str())),
                        ("importance", Value::from(e.importance)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("status", Value::from(result.status.as_str())),
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn query_augmentation(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match QueryAugmentationRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    run_query_augmentation(state, &parsed)
}

/// Execute a parsed query-augmentation request (shared with job workers).
pub(crate) fn run_query_augmentation(
    state: &AppState,
    parsed: &QueryAugmentationRequest,
) -> Response {
    let config = QueryAugmentationConfig {
        n: parsed.n,
        threshold: parsed.threshold,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match state.engine.query_augmentation(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        &config,
    ) {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "terms",
                            Value::Array(e.terms.iter().map(|t| Value::from(t.as_str())).collect()),
                        ),
                        ("augmented_query", Value::from(e.augmented_query.as_str())),
                        ("tfidf", Value::from(e.tfidf)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("status", Value::from(result.status.as_str())),
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn query_reduction(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match QueryReductionRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    run_query_reduction(state, &parsed)
}

/// Execute a parsed query-reduction request (shared with job workers).
pub(crate) fn run_query_reduction(state: &AppState, parsed: &QueryReductionRequest) -> Response {
    let config = QueryReductionConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match state
        .engine
        .query_reduction(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_terms",
                            Value::Array(
                                e.removed_terms
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("reduced_query", Value::from(e.reduced_query.as_str())),
                        ("old_rank", Value::from(e.old_rank)),
                        (
                            "new_rank",
                            e.new_rank.map(Value::from).unwrap_or(Value::Null),
                        ),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("status", Value::from(result.status.as_str())),
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn term_removal(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match TermRemovalRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    run_term_removal(state, &parsed)
}

/// Execute a parsed term-removal request (shared with job workers).
pub(crate) fn run_term_removal(state: &AppState, parsed: &TermRemovalRequest) -> Response {
    let config = TermRemovalConfig {
        n: parsed.n,
        budget: parsed.controls.search,
        eval: parsed.controls.eval,
        lifecycle: parsed.controls.lifecycle.clone(),
        ..Default::default()
    };
    let started = Instant::now();
    match state
        .engine
        .term_removal(&parsed.query, parsed.k, DocId(parsed.doc as u32), &config)
    {
        Err(e) => explain_error_response(e),
        Ok(result) => {
            state.metrics.record_search(
                result.status.as_str(),
                result.candidates_evaluated as u64,
                started.elapsed().as_micros() as u64,
            );
            let explanations: Vec<Value> = result
                .explanations
                .iter()
                .map(|e| {
                    obj([
                        (
                            "removed_terms",
                            Value::Array(
                                e.removed_terms
                                    .iter()
                                    .map(|t| Value::from(t.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("perturbed_body", Value::from(e.perturbed_body.as_str())),
                        ("importance", Value::from(e.importance)),
                        ("old_rank", Value::from(e.old_rank)),
                        ("new_rank", Value::from(e.new_rank)),
                    ])
                })
                .collect();
            Response::json(
                200,
                to_string(&obj([
                    ("status", Value::from(result.status.as_str())),
                    ("old_rank", Value::from(result.old_rank)),
                    (
                        "candidates_evaluated",
                        Value::from(result.candidates_evaluated),
                    ),
                    ("explanations", Value::Array(explanations)),
                ])),
            )
        }
    }
}

fn instance_json(explanations: &[credence_core::InstanceExplanation]) -> Value {
    Value::Array(
        explanations
            .iter()
            .map(|e| {
                obj([
                    ("doc", Value::from(e.doc.0)),
                    ("similarity", Value::from(e.similarity)),
                    ("rank", e.rank.map(Value::from).unwrap_or(Value::Null)),
                ])
            })
            .collect(),
    )
}

fn doc2vec_nearest(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match Doc2VecNearestRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state
        .engine
        .doc2vec_nearest(&parsed.query, parsed.k, DocId(parsed.doc as u32), parsed.n)
    {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj([("explanations", instance_json(&out))])),
        ),
    }
}

fn cosine_sampled(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match CosineSampledRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state.engine.cosine_sampled(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        parsed.n,
        parsed.samples,
    ) {
        Err(e) => explain_error_response(e),
        Ok(out) => Response::json(
            200,
            to_string(&obj([("explanations", instance_json(&out))])),
        ),
    }
}

fn topics(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match TopicsRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state
        .engine
        .topics(&parsed.query, parsed.k, parsed.num_topics)
    {
        Err(e) => explain_error_response(e),
        Ok(topics) => {
            let rows: Vec<Value> = topics
                .iter()
                .map(|t| {
                    obj([
                        ("topic", Value::from(t.topic)),
                        ("weight", Value::from(t.weight)),
                        (
                            "terms",
                            Value::Array(
                                t.terms
                                    .iter()
                                    .map(|(term, p)| {
                                        obj([
                                            ("term", Value::from(term.as_str())),
                                            ("probability", Value::from(*p)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Response::json(200, to_string(&obj([("topics", Value::Array(rows))])))
        }
    }
}

fn snippet(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match SnippetRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state
        .engine
        .snippet(&parsed.query, DocId(parsed.doc as u32), parsed.window)
    {
        Err(e) => explain_error_response(e),
        Ok((highlights, snippet)) => {
            let spans: Vec<Value> = highlights
                .iter()
                .map(|h| obj([("start", Value::from(h.start)), ("end", Value::from(h.end))]))
                .collect();
            let snippet_json = match snippet {
                None => Value::Null,
                Some(s) => obj([
                    ("text", Value::from(s.text)),
                    ("start", Value::from(s.start)),
                    ("end", Value::from(s.end)),
                    ("hits", Value::from(s.hits)),
                ]),
            };
            Response::json(
                200,
                to_string(&obj([
                    ("highlights", Value::Array(spans)),
                    ("snippet", snippet_json),
                ])),
            )
        }
    }
}

fn nearest_to_text(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match NearestToTextRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    let exclude = parsed.exclude.as_ref().map(|(q, k)| (q.as_str(), *k));
    let out = state
        .engine
        .nearest_to_text(&parsed.text, parsed.n, exclude);
    Response::json(200, to_string(&obj([("neighbors", instance_json(&out))])))
}

fn rerank(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match RerankRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state.engine.builder_rerank_budgeted(
        &parsed.query,
        parsed.k,
        DocId(parsed.doc as u32),
        &parsed.body,
        &parsed.lifecycle,
    ) {
        Err(e) => explain_error_response(e),
        Ok(outcome) => Response::json(
            200,
            to_string(&obj([
                ("valid", Value::from(outcome.valid)),
                ("old_rank", Value::from(outcome.old_rank)),
                ("new_rank", Value::from(outcome.new_rank)),
                (
                    "revealed",
                    outcome
                        .revealed
                        .map(|d| Value::from(d.0))
                        .unwrap_or(Value::Null),
                ),
                (
                    "rows",
                    Value::Array(outcome.rows.iter().map(pool_entry_json).collect()),
                ),
            ])),
        ),
    }
}

/// Execute an admitted job request through the same `run_*` path the
/// synchronous endpoint uses — the single point that guarantees job
/// payloads are bit-identical to synchronous responses.
pub(crate) fn execute_job(state: &AppState, request: &JobRequest) -> Response {
    match request {
        JobRequest::SentenceRemoval(r) => run_sentence_removal(state, r),
        JobRequest::QueryAugmentation(r) => run_query_augmentation(state, r),
        JobRequest::QueryReduction(r) => run_query_reduction(state, r),
        JobRequest::TermRemoval(r) => run_term_removal(state, r),
    }
}

/// `POST /api/v1/jobs` — admit an explanation request into the queue.
fn jobs_submit(state: &AppState, req: &Request, _tail: &str) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match JobSubmitRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    match state.jobs.submit(parsed.request, &state.metrics) {
        SubmitOutcome::Accepted(id) => Response::json(
            202,
            to_string(&obj([
                ("job_id", Value::from(format!("job-{id}"))),
                ("status", Value::from("queued")),
            ])),
        ),
        SubmitOutcome::QueueFull => error_envelope(
            429,
            "queue_full",
            format!(
                "job queue is full ({} waiting); retry later",
                state.jobs.config().queue_depth
            ),
        )
        .with_header("retry-after", "1"),
        SubmitOutcome::ShuttingDown => error_envelope(
            503,
            "shutting_down",
            "server is draining; no new jobs accepted",
        )
        .with_header("retry-after", "1"),
    }
}

/// Parse a `job-<n>` wire id into the runner's numeric id.
fn parse_job_id(tail: &str) -> Option<u64> {
    tail.strip_prefix("job-")?.parse().ok()
}

/// Render one job snapshot: `410` + an embedded `job_expired` error for
/// expired jobs, `200` with the stored result (if any) otherwise.
fn job_response(view: &JobView) -> Response {
    let id = Value::from(format!("job-{}", view.id));
    if view.state == crate::jobs::JobState::Expired {
        return Response::json(
            410,
            to_string(&obj([
                ("job_id", id),
                ("status", Value::from("expired")),
                ("endpoint", Value::from(view.endpoint)),
                (
                    "error",
                    obj([
                        ("code", Value::from("job_expired")),
                        (
                            "message",
                            Value::from("the result aged out of the store and was discarded"),
                        ),
                    ]),
                ),
            ])),
        );
    }
    let mut fields: Vec<(&str, Value)> = vec![
        ("job_id", id),
        ("status", Value::from(view.state.as_str())),
        ("endpoint", Value::from(view.endpoint)),
    ];
    if let Some((status, payload)) = &view.result {
        fields.push(("result", payload.clone()));
        fields.push(("result_status", Value::from(*status as usize)));
    }
    Response::json(200, to_string(&obj(fields)))
}

/// `GET /api/v1/jobs/{id}` — poll one job.
fn jobs_get(state: &AppState, _req: &Request, tail: &str) -> Response {
    let Some(id) = parse_job_id(tail) else {
        return error_envelope(400, "invalid_field", "job id must look like job-<n>");
    };
    match state.jobs.get(id, &state.metrics) {
        None => error_envelope(404, "job_not_found", format!("no such job: job-{id}")),
        Some(view) => job_response(&view),
    }
}

/// `DELETE /api/v1/jobs/{id}` — cancel one job.
fn jobs_cancel(state: &AppState, _req: &Request, tail: &str) -> Response {
    let Some(id) = parse_job_id(tail) else {
        return error_envelope(400, "invalid_field", "job id must look like job-<n>");
    };
    let wire_id = Value::from(format!("job-{id}"));
    match state.jobs.cancel(id, &state.metrics) {
        None => error_envelope(404, "job_not_found", format!("no such job: job-{id}")),
        Some(CancelOutcome::Cancelled) => Response::json(
            200,
            to_string(&obj([
                ("job_id", wire_id),
                ("status", Value::from("cancelled")),
            ])),
        ),
        Some(CancelOutcome::CancelRequested) => Response::json(
            202,
            to_string(&obj([
                ("job_id", wire_id),
                ("status", Value::from("running")),
                ("cancel_requested", Value::from(true)),
            ])),
        ),
        Some(CancelOutcome::AlreadyTerminal(state)) => Response::json(
            200,
            to_string(&obj([
                ("job_id", wire_id),
                ("status", Value::from(state.as_str())),
            ])),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn demo_docs() -> Vec<Document> {
        vec![
            Document::new(
                "n1",
                "Outbreak news",
                "covid outbreak covid outbreak dominates the news cycle this week entirely",
            ),
            Document::new(
                "n2",
                "Quiet arrival",
                "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
                 for weeks before acting decisively.",
            ),
            Document::new(
                "n3",
                "Conspiracy corner",
                "The covid outbreak is a cover story. A secret microchip hides in every \
                 vaccine dose. The microchip tracks your movements constantly.",
            ),
            Document::new(
                "n4",
                "Copycat",
                "A secret microchip hides in every vaccine dose. The microchip tracks your \
                 movements constantly and secretly.",
            ),
            Document::new(
                "n5",
                "Harbor drills",
                "Outbreak drills continue at the harbor facility through the weekend shift.",
            ),
            Document::new(
                "n6",
                "Gardens",
                "The garden show opens to record spring crowds.",
            ),
        ]
    }

    fn state() -> &'static AppState {
        static STATE: OnceLock<&'static AppState> = OnceLock::new();
        STATE.get_or_init(|| AppState::leak(demo_docs(), EngineConfig::fast()))
    }

    fn post(path: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        };
        handle_request(state(), &req)
    }

    fn get(path: &str) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        handle_request(state(), &req)
    }

    fn body_json(resp: &Response) -> Value {
        parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    /// The error envelope's code, when the body is an envelope.
    fn error_code(resp: &Response) -> Option<String> {
        body_json(resp)
            .get("error")?
            .get("code")?
            .as_str()
            .map(String::from)
    }

    #[test]
    fn ui_page_served_at_root() {
        let resp = get("/");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/html; charset=utf-8");
        assert_eq!(resp.header("deprecation"), None, "the UI is not an alias");
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("CREDENCE"));
        assert!(html.contains("/explain/"), "UI drives the REST API");
        assert!(html.contains(API_PREFIX), "UI calls the versioned API");
    }

    #[test]
    fn ranker_choice_parses() {
        assert_eq!(RankerChoice::parse("bm25"), Some(RankerChoice::Bm25));
        assert_eq!(RankerChoice::parse("ql"), Some(RankerChoice::QlDirichlet));
        assert_eq!(RankerChoice::parse("rm3"), Some(RankerChoice::Rm3));
        assert_eq!(RankerChoice::parse("neural"), Some(RankerChoice::Neural));
        assert_eq!(RankerChoice::parse("zebra"), None);
    }

    #[test]
    fn state_with_alternative_ranker_serves() {
        let state =
            AppState::leak_with(demo_docs(), EngineConfig::fast(), RankerChoice::QlDirichlet);
        let req = Request {
            method: "POST".into(),
            path: "/api/v1/rank".into(),
            headers: Default::default(),
            body: br#"{"query": "covid outbreak", "k": 3}"#.to_vec(),
        };
        let resp = handle_request(state, &req);
        assert_eq!(resp.status, 200);
        assert_eq!(state.engine().ranker().name(), "ql-dirichlet");
    }

    #[test]
    fn health_and_404_and_405() {
        assert_eq!(get("/health").status, 200);
        assert_eq!(get("/api/v1/health").status, 200);
        let missing = get("/nope");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("not_found"));
        let req = Request {
            method: "DELETE".into(),
            path: "/rank".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        let resp = handle_request(state(), &req);
        assert_eq!(resp.status, 405);
        assert_eq!(error_code(&resp).as_deref(), Some("method_not_allowed"));
    }

    #[test]
    fn unversioned_paths_are_deprecated_aliases() {
        let alias = post("/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(alias.status, 200);
        assert_eq!(alias.header("deprecation"), Some("true"));
        assert_eq!(
            alias.header("link"),
            Some("</api/v1/rank>; rel=\"successor-version\"")
        );

        let canonical = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(canonical.status, 200);
        assert_eq!(canonical.header("deprecation"), None);
        assert_eq!(
            alias.body, canonical.body,
            "aliases serve identical payloads"
        );
    }

    #[test]
    fn alias_link_points_at_the_full_path() {
        let resp = get("/doc/2");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("link"),
            Some("</api/v1/doc/2>; rel=\"successor-version\"")
        );
        assert_eq!(get("/api/v1/doc/2").header("deprecation"), None);
    }

    #[test]
    fn corpus_and_doc_endpoints() {
        let resp = get("/corpus");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("num_docs").unwrap().as_u64(), Some(6));

        let resp = get("/api/v1/doc/2");
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(v
            .get("body")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("microchip"));

        let missing = get("/doc/99");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("doc_not_found"));
        assert_eq!(get("/doc/zebra").status, 400);
    }

    #[test]
    fn rank_endpoint() {
        let resp = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let ranking = v.get("ranking").unwrap().as_array().unwrap();
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].get("rank").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rank_validation_errors() {
        assert_eq!(post("/rank", "not json").status, 400);
        assert_eq!(post("/rank", r#"{"k": 3}"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid"}"#).status, 400);
        assert_eq!(post("/rank", r#"[1,2]"#).status, 400);
        assert_eq!(post("/rank", r#"{"query": "covid", "k": -1}"#).status, 400);
    }

    #[test]
    fn invalid_fields_all_reported_in_the_envelope() {
        let resp = post("/api/v1/rank", r#"{"query": 7, "k": "three", "zz": 1}"#);
        assert_eq!(resp.status, 400);
        let v = body_json(&resp);
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("invalid_field"));
        assert!(err.get("field").unwrap().as_str().is_some());
        let details = err.get("details").unwrap().as_array().unwrap();
        assert_eq!(details.len(), 3, "query, k, and the unknown field");
        let fields: Vec<&str> = details
            .iter()
            .map(|d| d.get("field").unwrap().as_str().unwrap())
            .collect();
        assert!(fields.contains(&"query"));
        assert!(fields.contains(&"k"));
        assert!(fields.contains(&"zz"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let resp = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "deadlin_ms": 5}"#,
        );
        assert_eq!(resp.status, 400);
        let v = body_json(&resp);
        assert_eq!(
            v.get("error").unwrap().get("field").unwrap().as_str(),
            Some("deadlin_ms")
        );
    }

    #[test]
    fn sentence_removal_endpoint() {
        let resp = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert_eq!(explanations.len(), 1);
        let new_rank = explanations[0].get("new_rank").unwrap().as_u64().unwrap();
        assert!(new_rank > 3);
    }

    #[test]
    fn eval_knobs_change_nothing_but_validate() {
        // The evaluation engine is bit-deterministic: a request that forces
        // the threaded path must produce a byte-identical payload.
        let plain = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        let tuned = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "eval_threads": 3, "eval_parallel_threshold": 1}"#,
        );
        assert_eq!(tuned.status, 200);
        assert_eq!(plain.body, tuned.body);

        let bad = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "eval_threads": "many"}"#,
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn generous_budget_payload_matches_unbudgeted() {
        let plain = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        let budgeted = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1,
                "deadline_ms": 600000, "max_evals": 1000000}"#,
        );
        assert_eq!(budgeted.status, 200);
        assert_eq!(plain.body, budgeted.body);
    }

    #[test]
    fn expired_deadline_returns_well_formed_partial_result() {
        let resp = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "deadline_ms": 0}"#,
        );
        assert_eq!(resp.status, 200, "a tripped budget is not an error");
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("deadline"));
        assert_eq!(v.get("candidates_evaluated").unwrap().as_u64(), Some(0));
        assert!(v
            .get("explanations")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(v.get("old_rank").unwrap().as_u64().is_some());
        assert!(state().metrics().deadline_hits() > 0);
    }

    #[test]
    fn max_evals_cap_returns_exhausted_prefix() {
        let capped = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 5, "max_evals": 1}"#,
        );
        assert_eq!(capped.status, 200);
        let v = body_json(&capped);
        assert_eq!(v.get("status").unwrap().as_str(), Some("exhausted"));
        assert_eq!(v.get("candidates_evaluated").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_endpoint_exposes_the_registry() {
        // Generate at least one request beforehand so counters are nonzero.
        let _ = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        let resp = get("/metrics");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; charset=utf-8");
        assert_eq!(resp.header("deprecation"), None, "/metrics is canonical");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("credence_requests_total{endpoint=\"rank\",status=\"200\"}"));
        assert!(text.contains("credence_request_duration_seconds_bucket"));
        assert!(text.contains("credence_request_duration_quantile_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("credence_deadline_hits_total"));
        assert!(text.contains("credence_candidate_evals_total"));
        assert!(text.contains("credence_searches_total{status=\"complete\"}"));
        assert!(text.contains("credence_retrieval_docs_scored_total"));
        assert!(text.contains("credence_retrieval_docs_pruned_total"));
        assert!(text.contains("credence_retrieval_shards_used_total"));
        assert!(text.contains("credence_ranking_cache_hits_total"));
        assert!(text.contains("credence_ranking_cache_misses_total"));
    }

    #[test]
    fn metrics_reflect_retrieval_after_a_ranked_query() {
        // A fresh state so other tests' cached rankings don't interfere.
        let state = AppState::leak(demo_docs(), EngineConfig::fast());
        let req = Request {
            method: "POST".into(),
            path: "/api/v1/rank".into(),
            headers: Default::default(),
            body: br#"{"query": "covid outbreak", "k": 3}"#.to_vec(),
        };
        assert_eq!(handle_request(state, &req).status, 200);
        let scrape = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        let text = String::from_utf8(handle_request(state, &scrape).body).unwrap();
        assert!(
            text.contains("credence_ranking_cache_misses_total 1"),
            "one ranking computed:\n{text}"
        );
        assert!(
            !text.contains("credence_retrieval_docs_scored_total 0"),
            "the rank request scored documents:\n{text}"
        );
    }

    #[test]
    fn rank_accepts_strategy_overrides() {
        let base = post("/api/v1/rank", r#"{"query": "covid outbreak", "k": 3}"#);
        let v = body_json(&base);
        let expected = v.get("ranking").unwrap().as_array().unwrap().to_vec();
        for strategy in ["exhaustive", "pruned", "bmw", "sharded", "auto"] {
            let resp = post(
                "/api/v1/rank",
                &format!(
                    r#"{{"query": "covid outbreak", "k": 3, "search_strategy": "{strategy}", "search_shards": 2}}"#
                ),
            );
            assert_eq!(resp.status, 200, "{strategy}");
            let v = body_json(&resp);
            let ranking = v.get("ranking").unwrap().as_array().unwrap();
            assert_eq!(ranking.len(), expected.len(), "{strategy}");
            for (a, b) in ranking.iter().zip(&expected) {
                assert_eq!(
                    a.get("doc").unwrap().as_u64(),
                    b.get("doc").unwrap().as_u64()
                );
            }
        }
        let bad = post(
            "/api/v1/rank",
            r#"{"query": "covid", "k": 3, "search_strategy": "fastest"}"#,
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn sentence_removal_doc_errors() {
        let missing = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 99}"#,
        );
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("doc_not_found"));
        let irrelevant = post(
            "/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 5}"#,
        );
        assert_eq!(irrelevant.status, 422, "garden doc is not relevant");
        assert_eq!(error_code(&irrelevant).as_deref(), Some("doc_not_relevant"));
    }

    #[test]
    fn error_envelope_on_every_endpoint() {
        // Every POST endpoint answers field errors with the envelope.
        let cases = [
            ("/api/v1/rank", r#"{"k": 3}"#),
            ("/api/v1/explain/sentence-removal", r#"{"k": 3}"#),
            ("/api/v1/explain/query-augmentation", r#"{"k": 3}"#),
            ("/api/v1/explain/query-reduction", r#"{"k": 3}"#),
            ("/api/v1/explain/term-removal", r#"{"k": 3}"#),
            ("/api/v1/explain/doc2vec-nearest", r#"{"k": 3}"#),
            ("/api/v1/explain/cosine-sampled", r#"{"k": 3}"#),
            ("/api/v1/explain/nearest-to-text", r#"{"n": 3}"#),
            ("/api/v1/topics", r#"{"k": 3}"#),
            ("/api/v1/snippet", r#"{"doc": 1}"#),
            ("/api/v1/rerank", r#"{"query": "covid", "k": 3, "doc": 2}"#),
        ];
        for (path, body) in cases {
            let resp = post(path, body);
            assert_eq!(resp.status, 400, "{path}");
            let v = body_json(&resp);
            let err = v
                .get("error")
                .unwrap_or_else(|| panic!("{path}: no envelope"));
            assert_eq!(
                err.get("code").unwrap().as_str(),
                Some("invalid_field"),
                "{path}"
            );
            assert!(err.get("message").unwrap().as_str().is_some(), "{path}");
        }
    }

    #[test]
    fn job_endpoints_submit_poll_and_report() {
        let resp = post(
            "/api/v1/jobs",
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}}"#,
        );
        assert_eq!(resp.status, 202);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        let job_id = v.get("job_id").unwrap().as_str().unwrap().to_string();
        assert!(job_id.starts_with("job-"));

        let numeric: u64 = job_id.strip_prefix("job-").unwrap().parse().unwrap();
        assert_eq!(
            state()
                .jobs()
                .wait_terminal(numeric, std::time::Duration::from_secs(30)),
            Some(crate::jobs::JobState::Complete)
        );
        let polled = get(&format!("/api/v1/jobs/{job_id}"));
        assert_eq!(polled.status, 200);
        let v = body_json(&polled);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        assert_eq!(
            v.get("endpoint").unwrap().as_str(),
            Some("sentence-removal")
        );
        assert_eq!(v.get("result_status").unwrap().as_u64(), Some(200));
        // The stored result is the synchronous endpoint's payload.
        let sync = post(
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(*v.get("result").unwrap(), body_json(&sync));
    }

    #[test]
    fn job_submission_validates_the_envelope() {
        let bad = post("/api/v1/jobs", r#"{"endpoint": "saliency", "request": {}}"#);
        assert_eq!(bad.status, 400);
        assert_eq!(error_code(&bad).as_deref(), Some("invalid_field"));

        let no_request = post("/api/v1/jobs", r#"{"endpoint": "term-removal"}"#);
        assert_eq!(no_request.status, 400);

        let nested = post(
            "/api/v1/jobs",
            r#"{"endpoint": "term-removal", "request": {"query": "covid", "k": "x", "doc": 1}}"#,
        );
        assert_eq!(nested.status, 400);
        let v = body_json(&nested);
        let details = v
            .get("error")
            .unwrap()
            .get("details")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(details
            .iter()
            .any(|d| d.get("field").unwrap().as_str() == Some("request.k")));
    }

    #[test]
    fn job_lookup_and_cancel_handle_bad_ids() {
        assert_eq!(get("/api/v1/jobs/zebra").status, 400);
        let missing = get("/api/v1/jobs/job-999999");
        assert_eq!(missing.status, 404);
        assert_eq!(error_code(&missing).as_deref(), Some("job_not_found"));
        let req = Request {
            method: "DELETE".into(),
            path: "/api/v1/jobs/job-999999".into(),
            headers: Default::default(),
            body: Vec::new(),
        };
        assert_eq!(handle_request(state(), &req).status, 404);
    }

    #[test]
    fn query_augmentation_endpoint() {
        let resp = post(
            "/explain/query-augmentation",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 2, "threshold": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert!(!explanations.is_empty());
        for e in explanations {
            assert!(e.get("new_rank").unwrap().as_u64().unwrap() <= 1);
            assert!(e
                .get("augmented_query")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("covid outbreak"));
        }
    }

    #[test]
    fn query_reduction_endpoint() {
        let resp = post(
            "/explain/query-reduction",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        assert!(v.get("candidates_evaluated").unwrap().as_u64().is_some());
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        for e in explanations {
            assert!(!e
                .get("removed_terms")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn term_removal_endpoint() {
        let resp = post(
            "/api/v1/explain/term-removal",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
        let explanations = v.get("explanations").unwrap().as_array().unwrap();
        assert!(!explanations.is_empty());
        let e = &explanations[0];
        assert!(!e
            .get("removed_terms")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(e.get("new_rank").unwrap().as_u64().unwrap() > 3);
    }

    #[test]
    fn instance_endpoints() {
        let resp = post(
            "/explain/doc2vec-nearest",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("explanations").unwrap().as_array().unwrap().len(), 1);

        let resp = post(
            "/explain/cosine-sampled",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2, "n": 1, "samples": 10}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("doc").unwrap().as_u64(), Some(3), "the copycat");
    }

    #[test]
    fn topics_endpoint() {
        let resp = post(
            "/topics",
            r#"{"query": "covid outbreak", "k": 3, "num_topics": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("topics").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rerank_endpoint_runs_figure5() {
        let resp = post(
            "/rerank",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2,
                "body": "The flu is a cover story. A secret chip hides in every dose."}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("valid").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("new_rank").unwrap().as_u64(), Some(4));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 4, "pool of k+1 documents");
        assert!(rows
            .iter()
            .any(|r| r.get("substituted").unwrap().as_bool() == Some(true)));
    }

    #[test]
    fn rerank_with_expired_deadline_fails_fast() {
        let resp = post(
            "/api/v1/rerank",
            r#"{"query": "covid outbreak", "k": 3, "doc": 2,
                "body": "The flu is a cover story.", "deadline_ms": 0}"#,
        );
        assert_eq!(resp.status, 422, "the builder has no partial result");
        assert_eq!(error_code(&resp).as_deref(), Some("deadline_exceeded"));
    }

    #[test]
    fn snippet_endpoint() {
        let resp = post(
            "/snippet",
            r#"{"query": "covid outbreak", "doc": 2, "window": 8}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert!(!v.get("highlights").unwrap().as_array().unwrap().is_empty());
        assert!(
            v.get("snippet")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert_eq!(
            post("/snippet", r#"{"query": "covid", "doc": 999}"#).status,
            404
        );
    }

    #[test]
    fn nearest_to_text_endpoint() {
        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "secret microchip in vaccine doses", "n": 2}"#,
        );
        assert_eq!(resp.status, 200);
        let v = body_json(&resp);
        assert_eq!(v.get("neighbors").unwrap().as_array().unwrap().len(), 2);

        let resp = post(
            "/explain/nearest-to-text",
            r#"{"text": "covid outbreak tonight", "n": 2, "query": "covid outbreak", "k": 3}"#,
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn rerank_missing_fields() {
        assert_eq!(
            post("/rerank", r#"{"query": "covid", "k": 3, "doc": 2}"#).status,
            400
        );
    }
}
