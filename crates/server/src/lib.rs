//! The CREDENCE REST server.
//!
//! The original system exposes its backend as a FastAPI/Uvicorn REST API
//! (Figure 1). This crate reproduces that system boundary with a minimal
//! HTTP/1.1 server built on `std::net` — no async runtime, no web
//! framework — so the whole stack remains from-scratch Rust:
//!
//! * [`http`] — request parsing and response serialisation,
//! * [`requests`] — typed per-endpoint request structs parsed from JSON
//!   in one place (all invalid fields reported at once, unknown fields
//!   rejected),
//! * [`service`] — the endpoint handlers mapping the typed requests onto
//!   [`credence_core::CredenceEngine`] calls through a single route
//!   table,
//! * [`metrics`] — the zero-dependency observability registry served at
//!   `GET /metrics` in Prometheus text format,
//! * [`server`] — the TCP accept loop with one worker thread per
//!   connection (bounded by `--max-connections`) and a clean-shutdown
//!   handle,
//! * [`jobs`] — the async explanation job subsystem: a bounded submission
//!   queue, a fixed worker pool executing searches through the same
//!   handlers as the synchronous endpoints, and a TTL'd result store,
//! * [`client`] — the blocking fanout HTTP client with deadline handling
//!   and failure classification,
//! * [`router`] — scatter-gather cluster mode: `/rank` fans out one leg
//!   per doc-hash partition and merges with the sharded-path tie-break,
//!   proven byte-identical to single-node; doc-affine endpoints relay to
//!   the owner worker.
//!
//! ## Endpoints (all JSON)
//!
//! Canonical paths live under `/api/v1`; every API route also answers at
//! its historical unversioned path as a deprecated alias carrying a
//! `Deprecation: true` header and a `Link` to the successor. The search
//! endpoints accept the shared lifecycle/search knobs `deadline_ms?`,
//! `max_evals?`, `max_size?`, `max_candidates?`, `eval_threads?`,
//! `eval_parallel_threshold?`, `eval_exact?` and report `status`
//! (`complete` | `exhausted` | `deadline` | `cancelled`) plus
//! `candidates_evaluated` alongside their explanations.
//!
//! | Method | Path                                 | Body |
//! |--------|--------------------------------------|------|
//! | GET    | `/api/v1/health`                     | — |
//! | GET    | `/metrics`                           | — (Prometheus text) |
//! | GET    | `/api/v1/corpus`                     | — |
//! | GET    | `/api/v1/doc/{id}`                   | — |
//! | POST   | `/api/v1/rank`                       | `{query, k}` |
//! | POST   | `/api/v1/explain/sentence-removal`   | `{query, k, doc, n?, …knobs}` |
//! | POST   | `/api/v1/explain/query-augmentation` | `{query, k, doc, n?, threshold?, …knobs}` |
//! | POST   | `/api/v1/explain/query-reduction`    | `{query, k, doc, n?, …knobs}` |
//! | POST   | `/api/v1/explain/term-removal`       | `{query, k, doc, n?, …knobs}` |
//! | POST   | `/api/v1/explain/feature_attribution`| `{query, k, doc, samples?, seed?, top_m?, lambda?, …knobs}` |
//! | POST   | `/api/v1/explain/doc2vec-nearest`    | `{query, k, doc, n?}` |
//! | POST   | `/api/v1/explain/cosine-sampled`     | `{query, k, doc, n?, samples?}` |
//! | POST   | `/api/v1/explain/nearest-to-text`    | `{text, n?, query?, k?}` |
//! | POST   | `/api/v1/topics`                     | `{query, k, num_topics?}` |
//! | POST   | `/api/v1/snippet`                    | `{query, doc, window?}` |
//! | POST   | `/api/v1/rerank`                     | `{query, k, doc, body, deadline_ms?}` |
//! | POST   | `/api/v1/jobs`                       | `{endpoint, request}` → `202 {job_id, status}` (or `429` + `Retry-After`) |
//! | GET    | `/api/v1/jobs/{id}`                  | — (`status`: `queued…expired`; `result` once terminal; `410` after TTL) |
//! | DELETE | `/api/v1/jobs/{id}`                  | — (queued → `cancelled`; running → budget cancel flag raised) |
//!
//! Errors use one envelope, `{"error": {"code", "message", ...}}`, with
//! the stable codes from [`credence_core::ExplainError::code`].

#![warn(missing_docs)]

pub mod client;
pub mod explain_cache;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod requests;
pub mod router;
pub mod server;
pub mod service;

pub use client::{FailureKind, FanoutError, WireResponse};
pub use explain_cache::{ExplainCache, ExplainCacheConfig};
pub use jobs::{JobRunner, JobState, JobsConfig};
pub use metrics::Metrics;
pub use router::{RouterConfig, RouterState};
pub use server::{App, Server, ServerHandle, ServerOptions};
pub use service::{
    feature_attribution_payload, handle_request, AppState, RankerChoice, API_PREFIX,
};
