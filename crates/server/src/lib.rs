//! The CREDENCE REST server.
//!
//! The original system exposes its backend as a FastAPI/Uvicorn REST API
//! (Figure 1). This crate reproduces that system boundary with a minimal
//! HTTP/1.1 server built on `std::net` — no async runtime, no web
//! framework — so the whole stack remains from-scratch Rust:
//!
//! * [`http`] — request parsing and response serialisation,
//! * [`service`] — the endpoint handlers mapping JSON bodies onto
//!   [`credence_core::CredenceEngine`] calls,
//! * [`server`] — the TCP accept loop with one worker thread per
//!   connection and a clean-shutdown handle.
//!
//! ## Endpoints (all JSON)
//!
//! | Method | Path                          | Body |
//! |--------|-------------------------------|------|
//! | GET    | `/health`                     | — |
//! | GET    | `/corpus`                     | — |
//! | GET    | `/doc/{id}`                   | — |
//! | POST   | `/rank`                       | `{query, k}` |
//! | POST   | `/explain/sentence-removal`   | `{query, k, doc, n?}` |
//! | POST   | `/explain/query-augmentation` | `{query, k, doc, n?, threshold?}` |
//! | POST   | `/explain/doc2vec-nearest`    | `{query, k, doc, n?}` |
//! | POST   | `/explain/cosine-sampled`     | `{query, k, doc, n?, samples?}` |
//! | POST   | `/topics`                     | `{query, k, num_topics?}` |
//! | POST   | `/rerank`                     | `{query, k, doc, body}` |

#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod service;

pub use server::{Server, ServerHandle};
pub use service::{handle_request, AppState};
