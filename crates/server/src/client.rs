//! Minimal blocking HTTP/1.1 client for router→worker fanout.
//!
//! Mirrors [`crate::http`] on the other side of the wire: one request per
//! connection, `Connection: close` responses, `Content-Length` bodies. The
//! only sophistication is deadline handling — connect and read both run
//! under the remaining time of an absolute [`Instant`] deadline, so a
//! fanout leg can never outlive its budget — and failure classification,
//! which the router's degradation matrix is built on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a fanout leg failed, in the categories the degradation matrix
/// distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker could not be reached at all (refused, unreachable).
    Unreachable,
    /// The worker did not answer within the deadline.
    Deadline,
    /// The connection died or returned garbage mid-exchange.
    Protocol,
}

impl FailureKind {
    /// Stable label for logs and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Unreachable => "unreachable",
            FailureKind::Deadline => "deadline",
            FailureKind::Protocol => "protocol",
        }
    }
}

/// A failed fanout leg.
#[derive(Debug, Clone)]
pub struct FanoutError {
    /// Failure category.
    pub kind: FailureKind,
    /// Human-readable detail for logs.
    pub detail: String,
}

impl FanoutError {
    fn new(kind: FailureKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

/// A worker's answer to one fanout leg.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// HTTP status code.
    pub status: u16,
    /// The `content-type` header, when present.
    pub content_type: Option<String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

fn remaining(deadline: Instant) -> Result<Duration, FanoutError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        Err(FanoutError::new(
            FailureKind::Deadline,
            "deadline elapsed before the request completed",
        ))
    } else {
        Ok(left)
    }
}

fn classify_io(err: &std::io::Error) -> FailureKind {
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FailureKind::Deadline,
        _ => FailureKind::Protocol,
    }
}

/// Send one HTTP request and read the full response, all under `deadline`.
///
/// `body = Some(..)` sends a JSON POST-style body with `Content-Length`;
/// `None` sends a bare request line + headers.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    deadline: Instant,
) -> Result<WireResponse, FanoutError> {
    let stream = TcpStream::connect_timeout(&addr, remaining(deadline)?).map_err(|e| {
        let kind = match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => FailureKind::Deadline,
            _ => FailureKind::Unreachable,
        };
        FanoutError::new(kind, format!("connect {addr}: {e}"))
    })?;
    write_request(&stream, method, path, body, deadline)
        .map_err(|e| FanoutError::new(classify_io(&e), format!("send {addr}: {e}")))?;
    read_response(&stream, addr, deadline)
}

fn write_request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    deadline: Instant,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(
        deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1)),
    ))?;
    let body = body.unwrap_or(&[]);
    // Assemble the request and send it with one write: formatting straight
    // into the unbuffered stream issues a syscall per fragment, and a peer
    // that answers after its first read (small requests fit one segment)
    // would close the connection under the remaining fragments.
    let mut request = Vec::with_capacity(160 + body.len());
    write!(
        request,
        "{method} {path} HTTP/1.1\r\nhost: worker\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )?;
    request.extend_from_slice(body);
    stream.write_all(&request)?;
    stream.flush()
}

fn read_response(
    stream: &TcpStream,
    addr: SocketAddr,
    deadline: Instant,
) -> Result<WireResponse, FanoutError> {
    // One coarse read timeout from the remaining budget: every blocking
    // read aborts once the budget is spent. (Re-arming per read would only
    // tighten the bound; Connection: close responses are single reads in
    // practice.)
    stream
        .set_read_timeout(Some(remaining(deadline)?))
        .map_err(|e| FanoutError::new(FailureKind::Protocol, e.to_string()))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| FanoutError::new(classify_io(&e), format!("read {addr}: {e}")))?;
    if status_line.is_empty() {
        return Err(FanoutError::new(
            FailureKind::Protocol,
            format!("{addr} closed the connection before responding"),
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            FanoutError::new(
                FailureKind::Protocol,
                format!("{addr} sent a malformed status line: {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    let mut content_type: Option<String> = None;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| FanoutError::new(classify_io(&e), format!("read {addr}: {e}")))?;
        if n == 0 {
            return Err(FanoutError::new(
                FailureKind::Protocol,
                format!("{addr} closed the connection mid-headers"),
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = Some(value.trim().to_string());
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| FanoutError::new(classify_io(&e), format!("read {addr}: {e}")))?;
            buf
        }
        // Connection: close without a length: read to EOF.
        None => {
            let mut buf = Vec::new();
            reader
                .read_to_end(&mut buf)
                .map_err(|e| FanoutError::new(classify_io(&e), format!("read {addr}: {e}")))?;
            buf
        }
    };
    Ok(WireResponse {
        status,
        content_type,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_once(response: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                let _ = conn.read(&mut buf);
                let _ = conn.write_all(response.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn round_trips_a_response() {
        let addr = serve_once("HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nhi");
        let deadline = Instant::now() + Duration::from_secs(5);
        let resp = http_request(addr, "GET", "/health", None, deadline).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hi");
    }

    #[test]
    fn reads_to_eof_without_content_length() {
        let addr = serve_once("HTTP/1.1 200 OK\r\n\r\nstream until close");
        let deadline = Instant::now() + Duration::from_secs(5);
        let resp = http_request(addr, "GET", "/", None, deadline).unwrap();
        assert_eq!(resp.body, b"stream until close");
    }

    #[test]
    fn refused_connection_is_unreachable() {
        // Bind-and-drop to find a port with nothing listening.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(1);
        let err = http_request(addr, "GET", "/", None, deadline).unwrap_err();
        assert_eq!(err.kind, FailureKind::Unreachable, "{}", err.detail);
    }

    #[test]
    fn silent_server_times_out_as_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept but never answer.
        std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_secs(3));
            drop(conn);
        });
        let deadline = Instant::now() + Duration::from_millis(150);
        let err = http_request(addr, "GET", "/", None, deadline).unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline, "{}", err.detail);
    }

    #[test]
    fn connection_reset_is_protocol() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((conn, _)) = listener.accept() {
                // Close immediately without writing a byte.
                drop(conn);
            }
        });
        let deadline = Instant::now() + Duration::from_secs(2);
        let err = http_request(addr, "GET", "/", None, deadline).unwrap_err();
        assert_eq!(err.kind, FailureKind::Protocol, "{}", err.detail);
    }
}
