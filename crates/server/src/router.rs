//! Scatter-gather cluster router.
//!
//! `credence serve --router` promotes the in-process sharded merge
//! ([`credence_index::topk`]'s doc-id-range shards) to a process-level
//! cluster: every worker is a plain `credence-serve` over the **full**
//! corpus (replication keeps collection statistics — idf, avgdl — global,
//! which is what makes worker scores bit-identical to single-node), and
//! each `/rank` request is fanned out once per doc-hash partition with
//! `partition_index`/`partition_count` set, so the workers split the
//! *scoring work* rather than the data.
//!
//! The merge applies the same total order as the in-process sharded path —
//! score descending, doc id ascending — over the concatenated partition
//! top-ks, then truncates to `k`. Because partitions are disjoint and
//! covering, and every surviving score is produced by the same float fold a
//! single node would run, a complete merge is **byte-identical** to the
//! single-node `/rank` response (the JSON writer emits shortest-round-trip
//! `f64`s, so parse→re-serialize is lossless).
//!
//! Degradation matrix (per `/rank` fanout):
//!
//! | failure                    | response |
//! |----------------------------|----------|
//! | any partition unreachable  | `503` + `worker_unavailable` envelope |
//! | partition missed deadline  | `200`, `status: "deadline"`, `missing_partitions` |
//! | partition died mid-request | `200`, `status: "degraded"`, `missing_partitions` |
//! | all partitions failed      | `503` + `worker_unavailable` envelope |
//!
//! Doc-affine endpoints (`/explain/*`, `/doc/{id}`, `/snippet`, `/rerank`,
//! jobs) are routed whole to the partition owner's worker and relayed
//! verbatim — replication means any worker answers them bit-identically, so
//! affinity is a load-spreading choice, not a correctness requirement.
//! Corpus-level endpoints round-robin. Job wire ids gain a worker tag
//! (`job-<w>-<n>`) so polls and cancels route back to the worker that owns
//! the job; the stored `result` payload is relayed untouched.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use credence_index::{doc_partition, DocId};
use credence_json::{obj, parse, to_string, Value};

use crate::client::{http_request, FailureKind, FanoutError, WireResponse};
use crate::http::{Request, Response};
use crate::requests::RankRequest;
use crate::server::App;
use crate::service::{
    error_envelope, invalid_fields_response, json_body, strip_version, API_PREFIX,
};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Doc-hash partitions per `/rank` fanout; `0` means one per worker.
    pub partitions: u32,
    /// Default per-leg fanout deadline. Requests carrying their own
    /// `deadline_ms` budget get that budget plus this as grace (the worker
    /// needs time to ship its partial result back).
    pub fanout_deadline_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            partitions: 0,
            fanout_deadline_ms: 2_000,
        }
    }
}

/// Counters for the router's own Prometheus endpoint.
#[derive(Debug, Default)]
struct RouterMetrics {
    requests: AtomicU64,
    fanout_legs: AtomicU64,
    failures_unreachable: AtomicU64,
    failures_deadline: AtomicU64,
    failures_protocol: AtomicU64,
    degraded: AtomicU64,
    unavailable: AtomicU64,
    forwarded: AtomicU64,
    rejected: AtomicU64,
}

impl RouterMetrics {
    fn record_failure(&self, kind: FailureKind) {
        let counter = match kind {
            FailureKind::Unreachable => &self.failures_unreachable,
            FailureKind::Deadline => &self.failures_deadline,
            FailureKind::Protocol => &self.failures_protocol,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The scatter-gather fanout state served by the accept loop in router
/// mode. Holds no corpus — only worker addresses and counters.
pub struct RouterState {
    workers: Vec<SocketAddr>,
    partitions: u32,
    fanout_deadline: Duration,
    rr: AtomicUsize,
    metrics: RouterMetrics,
}

impl RouterState {
    /// Build a router over `workers` (at least one required).
    pub fn new(workers: Vec<SocketAddr>, config: RouterConfig) -> Self {
        assert!(!workers.is_empty(), "router needs at least one worker");
        let partitions = if config.partitions == 0 {
            workers.len() as u32
        } else {
            config.partitions
        };
        Self {
            workers,
            partitions,
            fanout_deadline: Duration::from_millis(config.fanout_deadline_ms.max(1)),
            rr: AtomicUsize::new(0),
            metrics: RouterMetrics::default(),
        }
    }

    /// Leak to `'static`, matching the engine-state pattern.
    pub fn leak(workers: Vec<SocketAddr>, config: RouterConfig) -> &'static RouterState {
        Box::leak(Box::new(Self::new(workers, config)))
    }

    /// The configured partition count.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Worker serving partition `p` (round-robin over workers when there
    /// are more partitions than workers).
    fn worker_for_partition(&self, p: u32) -> (usize, SocketAddr) {
        let w = p as usize % self.workers.len();
        (w, self.workers[w])
    }

    /// Worker owning `doc` — the one serving its partition.
    fn worker_for_doc(&self, doc: u64) -> (usize, SocketAddr) {
        self.worker_for_partition(doc_partition(DocId(doc as u32), self.partitions))
    }

    /// Round-robin pick for corpus-level requests.
    fn next_worker(&self) -> (usize, SocketAddr) {
        let w = self.rr.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        (w, self.workers[w])
    }

    /// The fanout deadline for a request, honouring an explicit
    /// `deadline_ms` budget in the body (plus the configured grace).
    fn leg_deadline(&self, body: Option<&Value>) -> Instant {
        let base = match body
            .and_then(|b| b.get("deadline_ms"))
            .and_then(Value::as_u64)
        {
            Some(ms) => Duration::from_millis(ms) + self.fanout_deadline,
            None => self.fanout_deadline,
        };
        Instant::now() + base
    }

    fn render_metrics(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        gauge(
            "credence_router_requests_total",
            "Requests handled by the router.",
            m.requests.load(Ordering::Relaxed),
        );
        gauge(
            "credence_router_fanout_legs_total",
            "Worker requests issued by rank fanout.",
            m.fanout_legs.load(Ordering::Relaxed),
        );
        gauge(
            "credence_router_forwarded_total",
            "Whole requests relayed to a single worker.",
            m.forwarded.load(Ordering::Relaxed),
        );
        gauge(
            "credence_router_degraded_total",
            "Partial rank responses served after worker failures.",
            m.degraded.load(Ordering::Relaxed),
        );
        gauge(
            "credence_router_unavailable_total",
            "Requests answered 503 because workers were unavailable.",
            m.unavailable.load(Ordering::Relaxed),
        );
        gauge(
            "credence_router_rejected_total",
            "Connections refused at the accept-loop door.",
            m.rejected.load(Ordering::Relaxed),
        );
        for (kind, counter) in [
            ("unreachable", &m.failures_unreachable),
            ("deadline", &m.failures_deadline),
            ("protocol", &m.failures_protocol),
        ] {
            out.push_str(&format!(
                "credence_router_fanout_failures_total{{kind=\"{kind}\"}} {}\n",
                counter.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "# HELP credence_router_workers Configured worker processes.\n# TYPE credence_router_workers gauge\ncredence_router_workers {}\n",
            self.workers.len()
        ));
        out.push_str(&format!(
            "# HELP credence_router_partitions Configured doc-hash partitions.\n# TYPE credence_router_partitions gauge\ncredence_router_partitions {}\n",
            self.partitions
        ));
        out
    }
}

impl App for RouterState {
    fn handle(&self, request: &Request) -> Response {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let (path, versioned) = strip_version(&request.path);
        let response = match (request.method.as_str(), path) {
            ("GET", "/metrics") => Response::text(200, self.render_metrics()),
            ("GET", "/health") => {
                Response::json(200, to_string(&obj([("status", Value::from("ok"))])))
            }
            ("POST", "/rank") => rank_fanout(self, request),
            ("POST", "/jobs") => jobs_submit(self, request),
            ("GET" | "DELETE", _) if path.starts_with("/jobs/") => {
                jobs_relay(self, request, &path["/jobs/".len()..])
            }
            // Corpus lifecycle mutations change worker state, and the
            // cluster's correctness rests on workers being replicas — so
            // they broadcast to every worker instead of picking one.
            // Reads (`GET /corpora...`) fall through to round-robin.
            ("PUT" | "DELETE" | "POST", _) if path.starts_with("/corpora") => {
                corpora_broadcast(self, request, path)
            }
            _ => forward(self, request, path),
        };
        // Unversioned API aliases get the same deprecation headers the
        // single-node dispatcher attaches.
        let infrastructure = matches!(path, "/" | "/index.html" | "/metrics");
        if !versioned && !infrastructure {
            response.with_header("deprecation", "true").with_header(
                "link",
                format!("<{API_PREFIX}{}>; rel=\"successor-version\"", request.path),
            )
        } else {
            response
        }
    }

    fn record_rejected(&self, _status: u16) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
    }
}

/// One merged `/rank` row, keyed for the deterministic total order.
struct MergedRow {
    doc: u64,
    score: f64,
    row: Value,
}

/// Fan `/rank` out over every partition and merge with the sharded-path
/// tie-break (score desc, doc asc).
fn rank_fanout(state: &RouterState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let parsed = match RankRequest::parse(&body) {
        Ok(p) => p,
        Err(errors) => return invalid_fields_response(errors),
    };
    if parsed.partition.is_some() {
        return error_envelope(
            400,
            "invalid_field",
            "partition_index/partition_count are router-internal; the router assigns partitions",
        );
    }
    let deadline = state.leg_deadline(Some(&body));
    let partitions = state.partitions;
    let legs: Vec<Result<WireResponse, FanoutError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..partitions)
            .map(|p| {
                let (_, addr) = state.worker_for_partition(p);
                let mut leg_body = body.clone();
                if let Value::Object(m) = &mut leg_body {
                    m.insert("partition_index".to_string(), Value::from(p as usize));
                    m.insert(
                        "partition_count".to_string(),
                        Value::from(partitions as usize),
                    );
                }
                let payload = to_string(&leg_body);
                scope.spawn(move || {
                    http_request(
                        addr,
                        "POST",
                        &format!("{API_PREFIX}/rank"),
                        Some(payload.as_bytes()),
                        deadline,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    state
        .metrics
        .fanout_legs
        .fetch_add(partitions as u64, Ordering::Relaxed);

    let mut rows: Vec<MergedRow> = Vec::new();
    let mut missing: Vec<(u32, FailureKind)> = Vec::new();
    // The (corpus, generation) envelope every surviving leg must agree on.
    // Workers are replicas, so a disagreement means the cluster is mid-swap
    // and a merged ranking would mix generations — refuse rather than blend.
    let mut envelope: Option<(String, u64)> = None;
    for (p, leg) in legs.into_iter().enumerate() {
        let p = p as u32;
        match leg {
            Ok(resp) if resp.status == 200 => match parse_ranking_rows(&resp.body) {
                Some((leg_envelope, mut partition_rows)) => {
                    match &envelope {
                        None => envelope = Some(leg_envelope),
                        Some(seen) if *seen != leg_envelope => {
                            return error_envelope(
                                409,
                                "generation_mismatch",
                                format!(
                                    "partition legs answered from different snapshots \
                                     ({}@{} vs {}@{}); retry once the swap settles",
                                    seen.0, seen.1, leg_envelope.0, leg_envelope.1
                                ),
                            );
                        }
                        Some(_) => {}
                    }
                    rows.append(&mut partition_rows);
                }
                None => {
                    state.metrics.record_failure(FailureKind::Protocol);
                    missing.push((p, FailureKind::Protocol));
                }
            },
            Ok(resp) => {
                // The router validated the request, so a worker-side
                // rejection is a fault, not a client error.
                state.metrics.record_failure(FailureKind::Protocol);
                missing.push((p, FailureKind::Protocol));
                let _ = resp;
            }
            Err(e) => {
                state.metrics.record_failure(e.kind);
                missing.push((p, e.kind));
            }
        }
    }

    let unreachable = missing.iter().any(|&(_, k)| k == FailureKind::Unreachable);
    if unreachable || missing.len() == partitions as usize {
        state.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
        let parts: Vec<String> = missing
            .iter()
            .map(|(p, k)| format!("{p}:{}", k.as_str()))
            .collect();
        return error_envelope(
            503,
            "worker_unavailable",
            format!(
                "partitions failed [{}]; ranking would be incomplete",
                parts.join(", ")
            ),
        );
    }

    // The sharded-merge contract: concatenate, order by (score desc, doc
    // asc), truncate to k, renumber ranks.
    rows.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.doc.cmp(&b.doc))
    });
    rows.truncate(parsed.k);
    let ranking: Vec<Value> = rows
        .into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            if let Value::Object(m) = &mut r.row {
                m.insert("rank".to_string(), Value::from(i + 1));
            }
            r.row
        })
        .collect();

    // At least one leg survived (checked above), so the envelope is set.
    let (corpus, generation) = envelope.expect("surviving legs carry an envelope");
    let mut fields: Vec<(&str, Value)> = vec![
        ("corpus", Value::from(corpus)),
        ("generation", Value::from(generation as usize)),
    ];
    if missing.is_empty() {
        fields.push(("ranking", Value::Array(ranking)));
        return Response::json(200, to_string(&obj(fields)));
    }
    state.metrics.degraded.fetch_add(1, Ordering::Relaxed);
    let status = if missing.iter().any(|&(_, k)| k == FailureKind::Deadline) {
        "deadline"
    } else {
        "degraded"
    };
    let missing_parts: Vec<Value> = missing
        .iter()
        .map(|&(p, _)| Value::from(p as usize))
        .collect();
    fields.push(("missing_partitions", Value::Array(missing_parts)));
    fields.push(("ranking", Value::Array(ranking)));
    fields.push(("status", Value::from(status)));
    Response::json(200, to_string(&obj(fields)))
}

/// Pull the `(corpus, generation)` envelope and the `(doc, score, row)`
/// triples out of one worker's `/rank` body.
fn parse_ranking_rows(body: &[u8]) -> Option<((String, u64), Vec<MergedRow>)> {
    let text = std::str::from_utf8(body).ok()?;
    let value = parse(text).ok()?;
    let corpus = value.get("corpus")?.as_str()?.to_string();
    let generation = value.get("generation")?.as_u64()?;
    let ranking = value.get("ranking")?.as_array()?;
    let mut rows = Vec::with_capacity(ranking.len());
    for row in ranking {
        let doc = row.get("doc")?.as_u64()?;
        let score = row.get("score")?.as_f64()?;
        rows.push(MergedRow {
            doc,
            score,
            row: row.clone(),
        });
    }
    Some(((corpus, generation), rows))
}

/// Broadcast a corpus-lifecycle mutation to every worker. Replication is
/// the cluster's correctness invariant, so the mutation must land on all of
/// them: any transport failure is `503 worker_unavailable` (the client
/// retries the idempotent PUT/DELETE), and workers disagreeing on the
/// outcome status is `503 cluster_inconsistent`. On agreement the first
/// worker's response is relayed verbatim.
fn corpora_broadcast(state: &RouterState, req: &Request, path: &str) -> Response {
    let deadline = state.leg_deadline(None);
    let canonical = format!("{API_PREFIX}{path}");
    let body = if req.body.is_empty() {
        None
    } else {
        Some(req.body.as_slice())
    };
    let legs: Vec<Result<WireResponse, FanoutError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = state
            .workers
            .iter()
            .map(|&addr| {
                let canonical = canonical.as_str();
                scope.spawn(move || http_request(addr, &req.method, canonical, body, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    state
        .metrics
        .fanout_legs
        .fetch_add(state.workers.len() as u64, Ordering::Relaxed);

    let mut responses = Vec::with_capacity(legs.len());
    for (w, leg) in legs.into_iter().enumerate() {
        match leg {
            Ok(resp) => responses.push(resp),
            Err(e) => {
                state.metrics.record_failure(e.kind);
                state.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
                return error_envelope(
                    503,
                    "worker_unavailable",
                    format!(
                        "worker {w} did not apply the corpus mutation ({}): {}; retry",
                        e.kind.as_str(),
                        e.detail
                    ),
                );
            }
        }
    }
    let first_status = responses[0].status;
    if responses.iter().any(|r| r.status != first_status) {
        let statuses: Vec<String> = responses.iter().map(|r| r.status.to_string()).collect();
        state.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
        return error_envelope(
            503,
            "cluster_inconsistent",
            format!(
                "workers disagreed on the mutation outcome [{}]; inspect worker state",
                statuses.join(", ")
            ),
        );
    }
    relay_response(responses.into_iter().next().unwrap())
}

/// Translate a fanout failure on a whole-request relay into an envelope.
fn relay_failure(state: &RouterState, err: FanoutError) -> Response {
    state.metrics.record_failure(err.kind);
    state.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
    let (code, message) = match err.kind {
        FailureKind::Unreachable => ("worker_unavailable", "worker is unreachable"),
        FailureKind::Deadline => ("worker_timeout", "worker missed the fanout deadline"),
        FailureKind::Protocol => ("worker_failed", "worker connection failed mid-request"),
    };
    error_envelope(503, code, format!("{message}: {}", err.detail))
}

/// Re-wrap a worker response for the router's client.
fn relay_response(resp: WireResponse) -> Response {
    let ct = resp.content_type.as_deref().unwrap_or("application/json");
    if ct.starts_with("text/html") {
        Response::html(resp.status, resp.body)
    } else if ct.starts_with("text/plain") {
        Response::text(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        )
    } else {
        Response::json(
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        )
    }
}

/// Forward one request whole: to the owner worker when it names a document
/// (`doc` body field or `/doc/{id}` path), round-robin otherwise.
fn forward(state: &RouterState, req: &Request, path: &str) -> Response {
    let body = if req.body.is_empty() {
        None
    } else {
        req.body_utf8().and_then(|t| parse(t).ok())
    };
    let (_, addr) = if let Some(doc) = affine_doc(&body, path) {
        state.worker_for_doc(doc)
    } else {
        state.next_worker()
    };
    let infrastructure = matches!(path, "/" | "/index.html" | "/metrics");
    let canonical = if infrastructure {
        path.to_string()
    } else {
        format!("{API_PREFIX}{path}")
    };
    let deadline = state.leg_deadline(body.as_ref());
    state.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
    let payload = (!req.body.is_empty()).then_some(req.body.as_slice());
    match http_request(addr, &req.method, &canonical, payload, deadline) {
        Ok(resp) => relay_response(resp),
        Err(e) => relay_failure(state, e),
    }
}

/// The document a request is affine to, when it names one.
fn affine_doc(body: &Option<Value>, path: &str) -> Option<u64> {
    if let Some(id) = path.strip_prefix("/doc/") {
        return id.parse::<u64>().ok();
    }
    body.as_ref()?.get("doc")?.as_u64()
}

/// `POST /jobs` through the router: route to the owner worker of the
/// request's document and tag the returned wire id with the worker index.
fn jobs_submit(state: &RouterState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let doc = body
        .get("request")
        .and_then(|r| r.get("doc"))
        .and_then(Value::as_u64);
    let (w, addr) = match doc {
        Some(d) => state.worker_for_doc(d),
        None => state.next_worker(),
    };
    let deadline = state.leg_deadline(Some(&body));
    state.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
    match http_request(
        addr,
        "POST",
        &format!("{API_PREFIX}/jobs"),
        Some(req.body.as_slice()),
        deadline,
    ) {
        Ok(resp) => rewrite_job_id(resp, w),
        Err(e) => relay_failure(state, e),
    }
}

/// `GET`/`DELETE /jobs/job-<w>-<n>` through the router: strip the worker
/// tag, relay to that worker, and re-tag the id in the response.
fn jobs_relay(state: &RouterState, req: &Request, tail: &str) -> Response {
    let Some((w, worker_id)) = parse_router_job_id(tail) else {
        return error_envelope(
            400,
            "invalid_field",
            "job id must look like job-<worker>-<n>",
        );
    };
    if w >= state.workers.len() {
        return error_envelope(404, "job_not_found", format!("no such job: {tail}"));
    }
    let addr = state.workers[w];
    let deadline = state.leg_deadline(None);
    state.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
    match http_request(
        addr,
        &req.method,
        &format!("{API_PREFIX}/jobs/{worker_id}"),
        None,
        deadline,
    ) {
        Ok(resp) => rewrite_job_id(resp, w),
        Err(e) => relay_failure(state, e),
    }
}

/// `job-<w>-<n>` → `(w, "job-<n>")`.
fn parse_router_job_id(tail: &str) -> Option<(usize, String)> {
    let rest = tail.strip_prefix("job-")?;
    let (w, n) = rest.split_once('-')?;
    let w = w.parse::<usize>().ok()?;
    let n = n.parse::<u64>().ok()?;
    Some((w, format!("job-{n}")))
}

/// Re-tag `job_id` fields (`job-<n>` → `job-<w>-<n>`) in a worker's job
/// response. The `result` payload and every other field re-serialise
/// byte-identically (both sides use the same deterministic JSON writer), so
/// job payloads through the router stay bit-identical to single-node jobs.
fn rewrite_job_id(resp: WireResponse, w: usize) -> Response {
    let rewritten = std::str::from_utf8(&resp.body)
        .ok()
        .and_then(|t| parse(t).ok())
        .map(|mut v| {
            if let Value::Object(m) = &mut v {
                if let Some(Value::String(id)) = m.get("job_id") {
                    if let Some(n) = id.strip_prefix("job-") {
                        let tagged = format!("job-{w}-{n}");
                        m.insert("job_id".to_string(), Value::from(tagged));
                    }
                }
            }
            to_string(&v)
        });
    match rewritten {
        Some(body) => Response::json(resp.status, body),
        None => relay_response(resp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_job_ids_round_trip() {
        assert_eq!(
            parse_router_job_id("job-2-17"),
            Some((2, "job-17".to_string()))
        );
        assert_eq!(parse_router_job_id("job-17"), None);
        assert_eq!(parse_router_job_id("nope"), None);
        assert_eq!(parse_router_job_id("job-x-1"), None);
    }

    #[test]
    fn partition_count_defaults_to_worker_count() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let r = RouterState::new(vec![addr, addr, addr], RouterConfig::default());
        assert_eq!(r.partitions(), 3);
        let r = RouterState::new(
            vec![addr],
            RouterConfig {
                partitions: 8,
                ..RouterConfig::default()
            },
        );
        assert_eq!(r.partitions(), 8);
    }

    #[test]
    fn doc_affinity_prefers_path_over_body() {
        let body = Some(obj([("doc", Value::from(4usize))]));
        assert_eq!(affine_doc(&body, "/doc/9"), Some(9));
        assert_eq!(affine_doc(&body, "/rank"), Some(4));
        assert_eq!(affine_doc(&None, "/corpus"), None);
    }
}
