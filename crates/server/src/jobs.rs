//! The asynchronous explanation job subsystem.
//!
//! The counterfactual searches are combinatorial, so a single explanation
//! can legitimately run for seconds even with parallel evaluation and
//! pruned retrieval. Serving heavy traffic therefore needs request
//! *admission* decoupled from explanation *execution*: a client submits a
//! search, gets a job id back immediately, and polls for the result while
//! a fixed worker pool grinds through the queue.
//!
//! The subsystem has three parts, all inside [`JobRunner`]:
//!
//! * a **bounded submission queue** — [`JobRunner::submit`] accepts at most
//!   `queue_depth` waiting jobs and rejects the rest immediately
//!   ([`SubmitOutcome::QueueFull`] → `429` + `Retry-After`), so backpressure
//!   reaches the client instead of piling up as unbounded memory;
//! * a **fixed pool of worker threads** — each worker claims the oldest
//!   queued job and executes it through the exact same handler the
//!   synchronous endpoint uses, so a job's stored payload is bit-identical
//!   to the synchronous response for the same request;
//! * a **TTL'd in-memory result store** — results are kept for
//!   `result_ttl_ms` after completion and then tombstoned
//!   ([`JobState::Expired`] → `410`). The TTL is a constant, so completion
//!   order *is* expiry order and eviction pops from the front of one
//!   `VecDeque` — O(1) amortised, no scanning. A `max_jobs` cap bounds the
//!   store itself by evicting the oldest terminal entries outright.
//!
//! ## State machine
//!
//! ```text
//! submit ─▶ queued ─▶ running ─▶ complete | exhausted | deadline
//!             │          │          | cancelled | failed
//!             │          └─ DELETE raises the Budget cancel flag; the
//!             │             search stops at the next candidate batch
//!             └─ DELETE / drain ─▶ cancelled
//! any terminal state ── result_ttl_ms ─▶ expired
//! ```
//!
//! Cancellation rides the existing [`Budget`](credence_core::Budget)
//! machinery: at submission the runner installs a cancel flag via
//! `Budget::ensure_cancel`, and `DELETE /api/v1/jobs/{id}` simply raises
//! it. The worker is never killed — the search observes the flag at its
//! next batch boundary and returns the partial best-so-far result with
//! `status: "cancelled"`, exactly as the synchronous path would.
//!
//! Shutdown ([`JobRunner::begin_shutdown`] + [`JobRunner::join_workers`])
//! drains deterministically: new submissions are rejected, still-queued
//! jobs flip to `cancelled` without running, and workers finish their
//! in-flight jobs (bounded by those jobs' own budgets) before joining. No
//! job is ever dropped mid-run.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use credence_core::CorpusSnapshot;
use credence_json::{parse, Value};

use crate::http::Response;
use crate::metrics::Metrics;
use crate::requests::JobRequest;
use crate::service::AppState;

/// Sizing knobs for the job subsystem, in the spirit of
/// [`EngineConfig`](credence_core::EngineConfig): sensible defaults, every
/// field overridable from `credence-serve` flags.
#[derive(Debug, Clone)]
pub struct JobsConfig {
    /// Worker threads executing jobs (`--job-workers`; clamped to ≥ 1).
    pub workers: usize,
    /// Maximum jobs waiting in the queue (`--job-queue-depth`); submissions
    /// beyond this are rejected with `429`.
    pub queue_depth: usize,
    /// How long a finished job's result stays retrievable, in milliseconds
    /// (`--job-result-ttl-ms`).
    pub result_ttl_ms: u64,
    /// Store-size cap: beyond this many tracked jobs, the oldest terminal
    /// entries (tombstones included) are evicted outright.
    pub max_jobs: usize,
}

impl Default for JobsConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            result_ttl_ms: 300_000,
            max_jobs: 4096,
        }
    }
}

/// Where a job is in its lifecycle. The four middle states mirror
/// [`SearchStatus`](credence_core::SearchStatus) — a finished job reports
/// exactly how its search finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is executing the search.
    Running,
    /// The search ran to its natural end.
    Complete,
    /// The search hit its `max_evals` cap.
    Exhausted,
    /// The search hit its wall-clock deadline.
    Deadline,
    /// Cancelled — either before running (no result) or mid-search (the
    /// partial best-so-far result is stored).
    Cancelled,
    /// The request was rejected by the handler (the error envelope is
    /// stored as the result payload).
    Failed,
    /// The result aged out of the store; only this tombstone remains.
    Expired,
}

impl JobState {
    /// The stable machine-readable name, serialised as the job's `status`.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Complete => "complete",
            JobState::Exhausted => "exhausted",
            JobState::Deadline => "deadline",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Expired => "expired",
        }
    }

    /// Whether the job will never change state again (except expiring).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A snapshot of one job for the HTTP layer.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Numeric id (rendered as `job-<n>` on the wire).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The endpoint name the job targets (`sentence-removal`, ...).
    pub endpoint: &'static str,
    /// The corpus the job was pinned to at submission.
    pub corpus: String,
    /// The generation the job was pinned to at submission — the one it
    /// executes against no matter how far the corpus advances.
    pub generation: u64,
    /// The stored outcome — the HTTP status and JSON payload the
    /// synchronous endpoint would have answered with. `None` while the job
    /// is pending, for jobs cancelled before running, and after expiry.
    pub result: Option<(u16, Value)>,
}

/// What [`JobRunner::submit`] decided.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Queued under this id.
    Accepted(u64),
    /// The bounded queue is full; the client should retry later.
    QueueFull,
    /// The runner is draining for shutdown and takes no new work.
    ShuttingDown,
}

/// What [`JobRunner::cancel`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now terminally cancelled.
    Cancelled,
    /// The job is running; its budget's cancel flag has been raised and
    /// the search will stop at its next candidate batch.
    CancelRequested,
    /// The job had already reached this terminal state.
    AlreadyTerminal(JobState),
}

/// One tracked job.
struct Job {
    state: JobState,
    endpoint: &'static str,
    /// The budget cancel flag shared with the search (installed at
    /// submission via `Budget::ensure_cancel`).
    cancel: Arc<AtomicBool>,
    /// Present while queued; taken by the claiming worker.
    request: Option<JobRequest>,
    /// The pinned snapshot the job will execute against. Held from
    /// submission until a worker claims it (then held by the worker for
    /// the duration of the run) — this is what keeps a pinned generation
    /// alive until every admitted job against it has drained.
    snapshot: Option<Arc<CorpusSnapshot>>,
    /// Envelope coordinates of `snapshot`, kept after the snapshot itself
    /// is released so poll responses can always name the pinned generation.
    corpus: String,
    generation: u64,
    /// Present once terminal (except queue-cancelled jobs); dropped at
    /// expiry.
    result: Option<(u16, Value)>,
    submitted_at: Instant,
    /// Set when the job reaches a terminal state.
    expires_at: Option<Instant>,
}

/// Everything behind the runner's mutex.
struct Shared {
    jobs: HashMap<u64, Job>,
    /// Ids awaiting a worker. May contain entries cancelled while queued —
    /// the claim loop skips anything no longer `Queued`.
    queue: VecDeque<u64>,
    /// Submission order, for the `max_jobs` capacity eviction.
    order: VecDeque<u64>,
    /// Completion order. The TTL is constant, so this is also expiry order
    /// and TTL eviction only ever pops from the front — O(1) amortised.
    expiry: VecDeque<u64>,
    next_id: u64,
    accepting: bool,
    shutdown: bool,
}

/// The bounded queue + worker pool + TTL'd result store. One per
/// [`AppState`]; workers start via [`JobRunner::start`] once the state has
/// been leaked to `'static`.
pub struct JobRunner {
    config: JobsConfig,
    shared: Mutex<Shared>,
    /// Signals workers: the queue gained an entry or shutdown began.
    work: Condvar,
    /// Signals waiters: some job reached a terminal state.
    done: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobRunner {
    /// A runner with no workers yet (see [`JobRunner::start`]).
    pub fn new(config: JobsConfig) -> Self {
        Self {
            config,
            shared: Mutex::new(Shared {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                order: VecDeque::new(),
                expiry: VecDeque::new(),
                next_id: 1,
                accepting: true,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The configured sizing knobs.
    pub fn config(&self) -> &JobsConfig {
        &self.config
    }

    /// Spawn the worker pool against a leaked state. Called once from
    /// `AppState::leak*`; workers idle on the queue condvar until work or
    /// shutdown arrives.
    pub(crate) fn start(&self, state: &'static AppState) {
        let mut workers = self.workers.lock().unwrap();
        assert!(workers.is_empty(), "job workers already started");
        for i in 0..self.config.workers.max(1) {
            let handle = std::thread::Builder::new()
                .name(format!("credence-job-{i}"))
                .spawn(move || worker_loop(state))
                .expect("spawn job worker");
            workers.push(handle);
        }
    }

    /// Admit one job against a pinned snapshot, installing a cancel flag in
    /// its lifecycle budget so `DELETE` can always reach the running search.
    /// The snapshot is held (keeping its generation alive) until the job
    /// finishes running or is cancelled off the queue.
    pub fn submit(
        &self,
        mut request: JobRequest,
        snapshot: Arc<CorpusSnapshot>,
        metrics: &Metrics,
    ) -> SubmitOutcome {
        let mut shared = self.shared.lock().unwrap();
        self.evict(&mut shared, metrics, Instant::now());
        if !shared.accepting {
            metrics.record_job_rejected();
            return SubmitOutcome::ShuttingDown;
        }
        if shared.queue.len() >= self.config.queue_depth {
            metrics.record_job_rejected();
            return SubmitOutcome::QueueFull;
        }
        let id = shared.next_id;
        shared.next_id += 1;
        let cancel = request.lifecycle_mut().ensure_cancel();
        let endpoint = request.endpoint();
        let (corpus, generation) = (snapshot.corpus().to_string(), snapshot.generation());
        shared.jobs.insert(
            id,
            Job {
                state: JobState::Queued,
                endpoint,
                cancel,
                request: Some(request),
                snapshot: Some(snapshot),
                corpus,
                generation,
                result: None,
                submitted_at: Instant::now(),
                expires_at: None,
            },
        );
        shared.queue.push_back(id);
        shared.order.push_back(id);
        metrics.record_job_state("queued");
        metrics.set_jobs_queue_depth(shared.queue.len() as u64);
        drop(shared);
        self.work.notify_one();
        SubmitOutcome::Accepted(id)
    }

    /// Look up one job, evicting expired results first.
    pub fn get(&self, id: u64, metrics: &Metrics) -> Option<JobView> {
        let mut shared = self.shared.lock().unwrap();
        self.evict(&mut shared, metrics, Instant::now());
        shared.jobs.get(&id).map(|job| JobView {
            id,
            state: job.state,
            endpoint: job.endpoint,
            corpus: job.corpus.clone(),
            generation: job.generation,
            result: job.result.clone(),
        })
    }

    /// Cancel one job: queued jobs become terminal immediately, running
    /// jobs get their budget cancel flag raised (the search stops at its
    /// next candidate batch and stores the partial result).
    pub fn cancel(&self, id: u64, metrics: &Metrics) -> Option<CancelOutcome> {
        let mut shared = self.shared.lock().unwrap();
        self.evict(&mut shared, metrics, Instant::now());
        let state = shared.jobs.get(&id)?.state;
        let outcome = match state {
            JobState::Queued => {
                let expires_at = Instant::now() + Duration::from_millis(self.config.result_ttl_ms);
                let job = shared.jobs.get_mut(&id).unwrap();
                job.state = JobState::Cancelled;
                job.request = None;
                job.snapshot = None;
                job.expires_at = Some(expires_at);
                // The id stays in `queue`; the claim loop skips it.
                shared.expiry.push_back(id);
                metrics.record_job_state("cancelled");
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                shared
                    .jobs
                    .get(&id)
                    .unwrap()
                    .cancel
                    .store(true, Ordering::Relaxed);
                CancelOutcome::CancelRequested
            }
            terminal => CancelOutcome::AlreadyTerminal(terminal),
        };
        drop(shared);
        self.done.notify_all();
        Some(outcome)
    }

    /// How many jobs are currently waiting for a worker.
    pub fn queue_len(&self) -> usize {
        let shared = self.shared.lock().unwrap();
        shared
            .queue
            .iter()
            .filter(|id| {
                shared
                    .jobs
                    .get(id)
                    .is_some_and(|j| j.state == JobState::Queued)
            })
            .count()
    }

    /// Block until the job reaches a terminal state (or the timeout
    /// passes), returning its state. `None` for unknown ids.
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut shared = self.shared.lock().unwrap();
        loop {
            match shared.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.is_terminal() => return Some(job.state),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return shared.jobs.get(&id).map(|j| j.state);
            }
            let (guard, _) = self.done.wait_timeout(shared, deadline - now).unwrap();
            shared = guard;
        }
    }

    /// Begin draining: reject new submissions, cancel still-queued jobs
    /// (they will never run), and tell workers to exit once the queue is
    /// empty. Running jobs keep their budgets untouched and finish on
    /// their own terms.
    pub fn begin_shutdown(&self, metrics: &Metrics) {
        let mut shared = self.shared.lock().unwrap();
        shared.accepting = false;
        shared.shutdown = true;
        let ttl = Duration::from_millis(self.config.result_ttl_ms);
        while let Some(id) = shared.queue.pop_front() {
            let queued = shared
                .jobs
                .get(&id)
                .is_some_and(|j| j.state == JobState::Queued);
            if !queued {
                continue;
            }
            let job = shared.jobs.get_mut(&id).unwrap();
            job.state = JobState::Cancelled;
            job.request = None;
            job.snapshot = None;
            job.expires_at = Some(Instant::now() + ttl);
            shared.expiry.push_back(id);
            metrics.record_job_state("cancelled");
        }
        metrics.set_jobs_queue_depth(0);
        drop(shared);
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Join the worker pool. Deterministic: workers exit as soon as the
    /// queue is empty after [`JobRunner::begin_shutdown`], so this returns
    /// once every in-flight job has stored its result.
    pub fn join_workers(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// [`begin_shutdown`](JobRunner::begin_shutdown) +
    /// [`join_workers`](JobRunner::join_workers).
    pub fn shutdown(&self, metrics: &Metrics) {
        self.begin_shutdown(metrics);
        self.join_workers();
    }

    /// Worker side: block for the next queued job, mark it running, and
    /// hand its request plus pinned snapshot over. `None` once shutdown
    /// drained the queue.
    fn claim(&self, metrics: &Metrics) -> Option<(u64, JobRequest, Arc<CorpusSnapshot>)> {
        let mut shared = self.shared.lock().unwrap();
        loop {
            while let Some(id) = shared.queue.pop_front() {
                metrics.set_jobs_queue_depth(shared.queue.len() as u64);
                let Some(job) = shared.jobs.get_mut(&id) else {
                    continue;
                };
                if job.state != JobState::Queued {
                    continue; // cancelled while queued
                }
                job.state = JobState::Running;
                let wait_us = job.submitted_at.elapsed().as_micros() as u64;
                let request = job.request.take().expect("queued job carries its request");
                let snapshot = job
                    .snapshot
                    .take()
                    .expect("queued job carries its snapshot");
                metrics.record_job_state("running");
                metrics.record_job_queue_wait(wait_us);
                return Some((id, request, snapshot));
            }
            if shared.shutdown {
                return None;
            }
            shared = self.work.wait(shared).unwrap();
        }
    }

    /// Worker side: store the outcome and arm the TTL.
    fn finish(
        &self,
        id: u64,
        state: JobState,
        status: u16,
        payload: Value,
        execution_us: u64,
        metrics: &Metrics,
    ) {
        let mut shared = self.shared.lock().unwrap();
        if let Some(job) = shared.jobs.get_mut(&id) {
            job.state = state;
            job.result = Some((status, payload));
            job.expires_at =
                Some(Instant::now() + Duration::from_millis(self.config.result_ttl_ms));
            shared.expiry.push_back(id);
            metrics.record_job_state(state.as_str());
            metrics.record_job_execution(execution_us);
        }
        drop(shared);
        self.done.notify_all();
    }

    /// Evict expired results (front of `expiry` only — the constant TTL
    /// keeps it ordered) and, beyond `max_jobs`, the oldest terminal
    /// entries outright. Live jobs are never touched; their count is
    /// already bounded by `queue_depth` plus the worker count.
    fn evict(&self, shared: &mut Shared, metrics: &Metrics, now: Instant) {
        while let Some(&id) = shared.expiry.front() {
            let Some(job) = shared.jobs.get(&id) else {
                shared.expiry.pop_front();
                continue;
            };
            if !matches!(job.expires_at, Some(t) if t <= now) {
                break;
            }
            shared.expiry.pop_front();
            let job = shared.jobs.get_mut(&id).unwrap();
            job.result = None;
            if job.state != JobState::Expired {
                job.state = JobState::Expired;
                metrics.record_job_state("expired");
            }
        }
        while shared.jobs.len() > self.config.max_jobs {
            let Some(&id) = shared.order.front() else {
                break;
            };
            if shared.jobs.get(&id).is_some_and(|j| !j.state.is_terminal()) {
                break;
            }
            shared.order.pop_front();
            shared.jobs.remove(&id);
        }
    }
}

/// The worker thread body: claim → execute through the synchronous
/// handler → classify → store.
fn worker_loop(state: &'static AppState) {
    let runner = state.jobs();
    let metrics = state.metrics();
    while let Some((id, request, snapshot)) = runner.claim(metrics) {
        let started = Instant::now();
        let response = crate::service::execute_job(state, &snapshot, &request);
        let execution_us = started.elapsed().as_micros() as u64;
        // Release the pinned generation before storing the result: once the
        // payload is durable the snapshot no longer needs to stay alive.
        drop(snapshot);
        let (job_state, payload) = job_outcome(&response);
        runner.finish(
            id,
            job_state,
            response.status,
            payload,
            execution_us,
            metrics,
        );
    }
}

/// Map a synchronous handler response onto the job state machine: a `200`
/// adopts the search's own `status` field; anything else is `Failed` with
/// the error envelope stored as the payload.
fn job_outcome(response: &Response) -> (JobState, Value) {
    let payload = std::str::from_utf8(&response.body)
        .ok()
        .and_then(|text| parse(text).ok())
        .unwrap_or(Value::Null);
    let state = if response.status == 200 {
        match payload.get("status").and_then(Value::as_str) {
            Some("exhausted") => JobState::Exhausted,
            Some("deadline") => JobState::Deadline,
            Some("cancelled") => JobState::Cancelled,
            _ => JobState::Complete,
        }
    } else {
        JobState::Failed
    };
    (state, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::{JobSubmitRequest, SentenceRemovalRequest};
    use credence_core::EngineConfig;
    use credence_index::Document;

    fn quick_docs() -> Vec<Document> {
        vec![
            Document::new("a", "A", "covid outbreak covid outbreak tonight"),
            Document::new(
                "b",
                "B",
                "The covid outbreak arrived quietly. Officials downplayed the covid \
                 outbreak for weeks before acting decisively.",
            ),
            Document::new("c", "C", "garden fair draws a record crowd"),
        ]
    }

    /// One long query-relevant document: an exact-serial sentence-removal
    /// search over it runs for seconds, long enough to observe `running`.
    fn slow_docs() -> Vec<Document> {
        let mut body = String::new();
        for i in 0..48 {
            if i % 4 == 0 {
                body.push_str(&format!(
                    "The covid outbreak update number n{i} arrives today. "
                ));
            } else {
                body.push_str(&format!(
                    "Filler sentence number n{i} talks about daily life. "
                ));
            }
        }
        let mut docs = vec![Document::new("long", "Long covid doc", &body)];
        for i in 0..4 {
            docs.push(Document::new(
                &format!("pad-{i}"),
                "Report",
                "covid outbreak report with several extra words for normalisation",
            ));
        }
        docs
    }

    fn state_with(docs: Vec<Document>, jobs: JobsConfig) -> &'static AppState {
        AppState::leak_jobs(
            docs,
            EngineConfig::fast(),
            crate::service::RankerChoice::Bm25,
            jobs,
        )
    }

    fn quick_request(body: &str) -> JobRequest {
        JobRequest::SentenceRemoval(SentenceRemovalRequest::parse(&parse(body).unwrap()).unwrap())
    }

    /// A sentence-removal search over the 48-sentence doc that runs for
    /// seconds unbudgeted (exact serial evaluation, wide enumeration).
    fn slow_request(deadline_ms: u64) -> JobRequest {
        quick_request(&format!(
            r#"{{"query": "covid outbreak", "k": 1, "doc": 0, "n": 999,
                "max_size": 3, "max_candidates": 48,
                "eval_exact": true, "eval_threads": 1,
                "deadline_ms": {deadline_ms}}}"#
        ))
    }

    #[test]
    fn job_payload_matches_the_synchronous_response() {
        let state = state_with(quick_docs(), JobsConfig::default());
        let request = quick_request(r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}"#);
        let sync = crate::service::execute_job(state, &state.default_snapshot(), &request);
        let SubmitOutcome::Accepted(id) =
            state
                .jobs()
                .submit(request, state.default_snapshot(), state.metrics())
        else {
            panic!("submission rejected");
        };
        assert_eq!(
            state.jobs().wait_terminal(id, Duration::from_secs(30)),
            Some(JobState::Complete)
        );
        let view = state.jobs().get(id, state.metrics()).unwrap();
        let (status, payload) = view.result.unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            payload,
            parse(std::str::from_utf8(&sync.body).unwrap()).unwrap(),
            "job path stores the synchronous payload bit-identically"
        );
        assert_eq!(view.endpoint, "sentence-removal");
    }

    #[test]
    fn budget_bound_jobs_reach_their_matching_terminal_state() {
        let state = state_with(quick_docs(), JobsConfig::default());
        let capped = quick_request(
            r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 5, "max_evals": 1}"#,
        );
        let SubmitOutcome::Accepted(id) =
            state
                .jobs()
                .submit(capped, state.default_snapshot(), state.metrics())
        else {
            panic!("submission rejected");
        };
        assert_eq!(
            state.jobs().wait_terminal(id, Duration::from_secs(30)),
            Some(JobState::Exhausted)
        );
        let (_, payload) = state
            .jobs()
            .get(id, state.metrics())
            .unwrap()
            .result
            .unwrap();
        assert_eq!(payload.get("status").unwrap().as_str(), Some("exhausted"));
    }

    #[test]
    fn doc_errors_store_the_envelope_as_a_failed_result() {
        let state = state_with(quick_docs(), JobsConfig::default());
        let request = quick_request(r#"{"query": "covid outbreak", "k": 2, "doc": 99}"#);
        let SubmitOutcome::Accepted(id) =
            state
                .jobs()
                .submit(request, state.default_snapshot(), state.metrics())
        else {
            panic!("submission rejected");
        };
        assert_eq!(
            state.jobs().wait_terminal(id, Duration::from_secs(30)),
            Some(JobState::Failed)
        );
        let (status, payload) = state
            .jobs()
            .get(id, state.metrics())
            .unwrap()
            .result
            .unwrap();
        assert_eq!(status, 404);
        assert_eq!(
            payload.get("error").unwrap().get("code").unwrap().as_str(),
            Some("doc_not_found")
        );
    }

    #[test]
    fn full_queue_rejects_and_queued_jobs_cancel_without_running() {
        // One worker, one queue slot: a slow job occupies the worker, the
        // next submission fills the queue, the one after bounces.
        let state = state_with(
            slow_docs(),
            JobsConfig {
                workers: 1,
                queue_depth: 1,
                ..JobsConfig::default()
            },
        );
        let SubmitOutcome::Accepted(running) = state.jobs().submit(
            slow_request(10_000),
            state.default_snapshot(),
            state.metrics(),
        ) else {
            panic!("first submission rejected");
        };
        // Wait until the worker has actually claimed it.
        let t0 = Instant::now();
        while state.jobs().get(running, state.metrics()).unwrap().state == JobState::Queued {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "worker never claimed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let SubmitOutcome::Accepted(waiting) = state.jobs().submit(
            slow_request(10_000),
            state.default_snapshot(),
            state.metrics(),
        ) else {
            panic!("second submission rejected");
        };
        assert!(
            matches!(
                state.jobs().submit(
                    slow_request(10_000),
                    state.default_snapshot(),
                    state.metrics()
                ),
                SubmitOutcome::QueueFull
            ),
            "third submission must bounce off the full queue"
        );

        // Cancel the queued job: terminal immediately, never runs.
        assert_eq!(
            state.jobs().cancel(waiting, state.metrics()),
            Some(CancelOutcome::Cancelled)
        );
        let view = state.jobs().get(waiting, state.metrics()).unwrap();
        assert_eq!(view.state, JobState::Cancelled);
        assert!(view.result.is_none(), "a never-run job has no payload");

        // Cancel the running job: the search stops at its next candidate
        // and stores the partial result with status "cancelled".
        assert_eq!(
            state.jobs().cancel(running, state.metrics()),
            Some(CancelOutcome::CancelRequested)
        );
        assert_eq!(
            state.jobs().wait_terminal(running, Duration::from_secs(10)),
            Some(JobState::Cancelled)
        );
        let (status, payload) = state
            .jobs()
            .get(running, state.metrics())
            .unwrap()
            .result
            .unwrap();
        assert_eq!(
            status, 200,
            "a cancelled search is a partial result, not an error"
        );
        assert_eq!(payload.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(
            state.jobs().cancel(running, state.metrics()),
            Some(CancelOutcome::AlreadyTerminal(JobState::Cancelled))
        );
    }

    #[test]
    fn results_expire_after_the_ttl() {
        let state = state_with(
            quick_docs(),
            JobsConfig {
                result_ttl_ms: 40,
                ..JobsConfig::default()
            },
        );
        let request = quick_request(r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}"#);
        let SubmitOutcome::Accepted(id) =
            state
                .jobs()
                .submit(request, state.default_snapshot(), state.metrics())
        else {
            panic!("submission rejected");
        };
        assert_eq!(
            state.jobs().wait_terminal(id, Duration::from_secs(30)),
            Some(JobState::Complete)
        );
        std::thread::sleep(Duration::from_millis(80));
        let view = state.jobs().get(id, state.metrics()).unwrap();
        assert_eq!(view.state, JobState::Expired);
        assert!(view.result.is_none(), "the payload is dropped at expiry");
        assert!(state.metrics().jobs_in_state("expired") >= 1);
    }

    #[test]
    fn capacity_eviction_drops_the_oldest_terminal_jobs() {
        let state = state_with(
            quick_docs(),
            JobsConfig {
                max_jobs: 2,
                ..JobsConfig::default()
            },
        );
        let mut ids = Vec::new();
        for _ in 0..4 {
            let request = quick_request(r#"{"query": "covid outbreak", "k": 2, "doc": 1}"#);
            let SubmitOutcome::Accepted(id) =
                state
                    .jobs()
                    .submit(request, state.default_snapshot(), state.metrics())
            else {
                panic!("submission rejected");
            };
            state.jobs().wait_terminal(id, Duration::from_secs(30));
            ids.push(id);
        }
        // A lookup triggers eviction down to max_jobs; the oldest ids are
        // gone entirely (404 on the wire), the newest still resolve.
        assert!(state.jobs().get(ids[3], state.metrics()).is_some());
        assert!(state.jobs().get(ids[0], state.metrics()).is_none());
    }

    #[test]
    fn shutdown_drains_without_dropping_the_running_job() {
        let state = state_with(
            slow_docs(),
            JobsConfig {
                workers: 1,
                queue_depth: 4,
                ..JobsConfig::default()
            },
        );
        // A running job (generous deadline; finishes via its own budget)
        // and a queued one behind it.
        let SubmitOutcome::Accepted(running) = state.jobs().submit(
            slow_request(1_500),
            state.default_snapshot(),
            state.metrics(),
        ) else {
            panic!("first submission rejected");
        };
        let t0 = Instant::now();
        while state.jobs().get(running, state.metrics()).unwrap().state == JobState::Queued {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "worker never claimed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let SubmitOutcome::Accepted(waiting) = state.jobs().submit(
            slow_request(1_500),
            state.default_snapshot(),
            state.metrics(),
        ) else {
            panic!("second submission rejected");
        };

        state.jobs().shutdown(state.metrics());

        // The queued job was cancelled without running; the running job
        // finished under its own budget and its result was stored.
        assert_eq!(
            state.jobs().get(waiting, state.metrics()).unwrap().state,
            JobState::Cancelled
        );
        let view = state.jobs().get(running, state.metrics()).unwrap();
        assert!(
            view.state.is_terminal(),
            "no job dropped mid-run: {:?}",
            view.state
        );
        assert!(view.result.is_some(), "the drained job stored its payload");

        // New submissions are refused while draining.
        assert!(matches!(
            state.jobs().submit(
                slow_request(1_500),
                state.default_snapshot(),
                state.metrics()
            ),
            SubmitOutcome::ShuttingDown
        ));
    }

    #[test]
    fn submit_envelope_parses_and_classifies() {
        let body = parse(
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid", "k": 2, "doc": 1}}"#,
        )
        .unwrap();
        let submit = JobSubmitRequest::parse(&body).unwrap();
        assert_eq!(submit.request.endpoint(), "sentence-removal");

        let bad = parse(r#"{"endpoint": "saliency", "request": {}}"#).unwrap();
        let errors = JobSubmitRequest::parse(&bad).unwrap_err();
        assert!(errors.iter().any(|e| e.field == "endpoint"));

        let nested = parse(
            r#"{"endpoint": "term-removal", "request": {"query": "covid", "k": "two", "doc": 1}}"#,
        )
        .unwrap();
        let errors = JobSubmitRequest::parse(&nested).unwrap_err();
        assert!(
            errors.iter().any(|e| e.field == "request.k"),
            "inner field errors are prefixed: {errors:?}"
        );
    }
}
