//! The TCP accept loop.
//!
//! One OS thread per connection, `Connection: close` per response — the
//! simplest server that correctly exposes the REST surface. The number of
//! concurrent connection threads is bounded ([`ServerOptions::max_connections`],
//! `--max-connections` on `credence-serve`): when every slot is busy the
//! accept loop answers `503` with the standard error envelope immediately
//! instead of spawning, so saturation degrades loudly rather than
//! accumulating unbounded threads. A [`ServerHandle`] supports clean
//! shutdown from tests, draining the async job subsystem before joining.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{read_request, Request, Response};

/// What the accept loop serves: a request handler plus shutdown hooks.
///
/// [`crate::service::AppState`] (a single-node engine) and
/// [`crate::router::RouterState`] (a scatter-gather fanout) both implement
/// this, so one accept loop serves either role. Implementations are
/// `&'static` — servers are process-lifetime objects, matching the leaked
/// engine pattern used everywhere else.
pub trait App: Send + Sync {
    /// Handle one parsed request.
    fn handle(&self, request: &Request) -> Response;

    /// Record a request refused at the accept-loop door (saturation 503).
    fn record_rejected(&self, _status: u16) {}

    /// Shutdown has begun; the accept loop still answers. Stop admitting
    /// long-lived work here (e.g. drain the job queue).
    fn begin_shutdown(&self) {}

    /// The accept loop has joined; release remaining background workers.
    fn finish_shutdown(&self) {}
}

/// Accept-loop tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum concurrent connection-handler threads. Sockets accepted
    /// beyond this are answered `503` + `Retry-After` without spawning.
    pub max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_connections: 1024,
        }
    }
}

/// A CREDENCE HTTP server bound to an address.
pub struct Server {
    listener: TcpListener,
    state: &'static dyn App,
    options: ServerOptions,
}

/// Handle for a running server: address + shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    state: &'static dyn App,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut down cleanly: drain the job subsystem (new submissions are
    /// rejected, queued jobs cancel, running jobs finish under their own
    /// budgets), stop the accept loop, and join everything with a bounded
    /// wait so a wedged accept thread cannot hang the caller.
    pub fn stop(mut self) {
        // Stop admitting jobs first, while the accept loop still answers:
        // in-flight submissions observe `shutting_down` instead of racing
        // a closed socket.
        self.state.begin_shutdown();
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a dummy connection; the accept thread may
        // already be gone, so a refused/timed-out connect is fine.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(join) = self.join.take() {
            // Bounded join: poll for completion rather than blocking
            // forever on a thread that never observed the stop flag.
            let deadline = Instant::now() + Duration::from_secs(5);
            while !join.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if join.is_finished() {
                let _ = join.join();
            }
        }
        // Workers exit once the drained queue is empty; joining them last
        // guarantees every in-flight job stored its result.
        self.state.finish_shutdown();
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default options.
    pub fn bind(addr: impl ToSocketAddrs, state: &'static dyn App) -> io::Result<Self> {
        Self::bind_with(addr, state, ServerOptions::default())
    }

    /// Bind with explicit accept-loop options.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        state: &'static dyn App,
        options: ServerOptions,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state,
            options,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on a background thread, returning a handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let state = self.state;
        let listener = self.listener;
        let options = self.options;
        let join = std::thread::spawn(move || {
            accept_loop(listener, state, Some(stop_flag), &options);
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
            state,
        })
    }

    /// Run the accept loop on the current thread, forever.
    pub fn run(self) -> io::Result<()> {
        accept_loop(self.listener, self.state, None, &self.options);
        Ok(())
    }
}

/// Decrements the active-connection count when a handler thread exits,
/// even if the handler panics.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    state: &'static dyn App,
    stop: Option<Arc<AtomicBool>>,
    options: &ServerOptions,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if let Some(stop) = &stop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
        }
        let Ok(stream) = conn else { continue };
        if active.fetch_add(1, Ordering::SeqCst) >= options.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            // Refuse at the door: never block the accept loop on a
            // saturated pool, and never read the request body.
            let resp = crate::service::error_envelope(
                503,
                "overloaded",
                "all connection slots are busy; retry later",
            )
            .with_header("retry-after", "1");
            let _ = resp.write_to(&stream);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            state.record_rejected(503);
            continue;
        }
        let guard = SlotGuard(Arc::clone(&active));
        std::thread::spawn(move || {
            let _guard = guard;
            handle_connection(state, stream);
        });
    }
}

fn handle_connection(state: &'static dyn App, stream: TcpStream) {
    let peer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let response = match read_request(peer_stream) {
        Ok(request) => state.handle(&request),
        Err(err) => crate::service::error_envelope(400, "bad_request", err.to_string()),
    };
    let _ = response.write_to(&stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::AppState;
    use credence_core::EngineConfig;
    use credence_index::Document;
    use std::io::{Read, Write};

    fn demo_state() -> &'static AppState {
        AppState::leak(
            vec![
                Document::new("a", "A", "covid outbreak covid outbreak tonight"),
                Document::new("b", "B", "covid outbreak closes the local school"),
                Document::new("c", "C", "garden fair draws a record crowd"),
            ],
            EngineConfig::fast(),
        )
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_over_real_sockets() {
        let server = Server::bind("127.0.0.1:0", demo_state()).unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();

        let health = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains(r#"{"status":"ok"}"#));

        let body = r#"{"query": "covid outbreak", "k": 2}"#;
        let rank = roundtrip(
            addr,
            &format!(
                "POST /rank HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(rank.starts_with("HTTP/1.1 200 OK"), "{rank}");
        assert!(rank.contains(r#""ranking""#));

        let bad = roundtrip(addr, "BROKEN\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        handle.stop();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", demo_state()).unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let resp = roundtrip(addr, "GET /corpus HTTP/1.1\r\nHost: t\r\n\r\n");
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        handle.stop();
    }

    #[test]
    fn saturated_connection_slots_answer_503() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            demo_state(),
            ServerOptions { max_connections: 1 },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();

        // Occupy the single slot: a connection that sends only a partial
        // request keeps its handler blocked in read_request.
        let mut holder = TcpStream::connect(addr).unwrap();
        holder.write_all(b"POST /rank HTTP/1.1\r\n").unwrap();
        // Give the accept loop time to hand the holder to its thread.
        let deadline = Instant::now() + Duration::from_secs(5);
        let refused = loop {
            let resp = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
            if resp.starts_with("HTTP/1.1 503") {
                break resp;
            }
            assert!(
                Instant::now() < deadline,
                "slot never saturated; last response: {resp}"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(refused.contains("overloaded"), "{refused}");
        assert!(
            refused.to_ascii_lowercase().contains("retry-after"),
            "{refused}"
        );

        // Release the slot; service resumes.
        holder.write_all(b"\r\n\r\n").unwrap();
        drop(holder);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let resp = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
            if resp.starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(Instant::now() < deadline, "slot never freed: {resp}");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
    }

    #[test]
    fn stop_is_bounded_and_repeat_safe() {
        // Stopping twice in a row (fresh states) must return promptly even
        // though the dummy wake-up connection may race the accept thread.
        for _ in 0..2 {
            let server = Server::bind("127.0.0.1:0", demo_state()).unwrap();
            let handle = server.spawn().unwrap();
            let started = Instant::now();
            handle.stop();
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "stop took {:?}",
                started.elapsed()
            );
        }
    }
}
