//! The TCP accept loop.
//!
//! One OS thread per connection, `Connection: close` per response — the
//! simplest server that correctly exposes the REST surface. A
//! [`ServerHandle`] supports clean shutdown from tests.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::http::read_request;
use crate::service::{handle_request, AppState};

/// A CREDENCE HTTP server bound to an address.
pub struct Server {
    listener: TcpListener,
    state: &'static AppState,
}

/// Handle for a running server: address + shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and join the accept thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, state: &'static AppState) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on a background thread, returning a handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let state = self.state;
        let listener = self.listener;
        let join = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        std::thread::spawn(move || handle_connection(state, stream));
                    }
                    Err(_) => continue,
                }
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// Run the accept loop on the current thread, forever.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let state = self.state;
                    std::thread::spawn(move || handle_connection(state, stream));
                }
                Err(_) => continue,
            }
        }
        Ok(())
    }
}

fn handle_connection(state: &'static AppState, stream: TcpStream) {
    let peer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let response = match read_request(peer_stream) {
        Ok(request) => handle_request(state, &request),
        Err(err) => crate::service::error_envelope(400, "bad_request", err.to_string()),
    };
    let _ = response.write_to(&stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_core::EngineConfig;
    use credence_index::Document;
    use std::io::{Read, Write};

    fn demo_state() -> &'static AppState {
        AppState::leak(
            vec![
                Document::new("a", "A", "covid outbreak covid outbreak tonight"),
                Document::new("b", "B", "covid outbreak closes the local school"),
                Document::new("c", "C", "garden fair draws a record crowd"),
            ],
            EngineConfig::fast(),
        )
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_over_real_sockets() {
        let server = Server::bind("127.0.0.1:0", demo_state()).unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();

        let health = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains(r#"{"status":"ok"}"#));

        let body = r#"{"query": "covid outbreak", "k": 2}"#;
        let rank = roundtrip(
            addr,
            &format!(
                "POST /rank HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(rank.starts_with("HTTP/1.1 200 OK"), "{rank}");
        assert!(rank.contains(r#""ranking""#));

        let bad = roundtrip(addr, "BROKEN\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        handle.stop();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", demo_state()).unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let resp = roundtrip(addr, "GET /corpus HTTP/1.1\r\nHost: t\r\n\r\n");
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        handle.stop();
    }
}
