//! Typed request parsing for the REST surface.
//!
//! Every `POST` endpoint has a request struct (`SentenceRemovalRequest`,
//! `RankRequest`, …) with a `parse` constructor that reads the JSON body in
//! one place. Parsing is *total*: every invalid field is recorded (not just
//! the first), unknown fields are rejected by name, and the caller receives
//! either the fully-validated struct or the complete list of
//! [`FieldError`]s to fold into one `invalid_field` error envelope.
//!
//! The shared search controls (`eval_*`, `deadline_ms`, `max_evals`,
//! `max_size`, `max_candidates`) parse into [`SearchControls`]; the
//! deadline starts ticking at parse time, i.e. from request arrival.

use credence_core::{Budget, EvalOptions, SearchBudget, SearchStrategy};
use credence_index::{Document, PartitionSpec};
use credence_json::Value;

/// The corpus served when a request does not name one — the corpus built
/// from the documents the process was started with, preserving the
/// single-tenant behavior of earlier API versions.
pub const DEFAULT_CORPUS: &str = "default";

/// One invalid request field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldError {
    /// The offending field name.
    pub field: String,
    /// What is wrong with it.
    pub message: String,
}

impl FieldError {
    fn new(field: &str, message: impl Into<String>) -> Self {
        Self {
            field: field.to_string(),
            message: message.into(),
        }
    }
}

/// Accumulating field reader over a JSON object body.
///
/// Getter methods record an error and return a placeholder on failure, so a
/// handler can read every field before deciding; [`FieldParser::finish`]
/// adds unknown-field errors and returns the verdict.
pub struct FieldParser<'v> {
    body: &'v Value,
    errors: Vec<FieldError>,
}

impl<'v> FieldParser<'v> {
    /// A parser over `body`, which must be a JSON object (callers validate
    /// that before constructing one).
    pub fn new(body: &'v Value) -> Self {
        Self {
            body,
            errors: Vec::new(),
        }
    }

    /// A required string field.
    pub fn require_str(&mut self, key: &str) -> String {
        match self.body.get(key) {
            Some(v) => match v.as_str() {
                Some(s) => s.to_string(),
                None => {
                    self.errors.push(FieldError::new(key, "must be a string"));
                    String::new()
                }
            },
            None => {
                self.errors
                    .push(FieldError::new(key, "missing required string field"));
                String::new()
            }
        }
    }

    /// A required non-negative integer field.
    pub fn require_usize(&mut self, key: &str) -> usize {
        match self.body.get(key) {
            Some(v) => match v.as_u64() {
                Some(n) => n as usize,
                None => {
                    self.errors
                        .push(FieldError::new(key, "must be a non-negative integer"));
                    0
                }
            },
            None => {
                self.errors
                    .push(FieldError::new(key, "missing required integer field"));
                0
            }
        }
    }

    /// An optional non-negative integer field with a default.
    pub fn optional_usize(&mut self, key: &str, default: usize) -> usize {
        match self.body.get(key) {
            None => default,
            Some(v) => match v.as_u64() {
                Some(n) => n as usize,
                None => {
                    self.errors
                        .push(FieldError::new(key, "must be a non-negative integer"));
                    default
                }
            },
        }
    }

    /// An optional non-negative integer field with no default.
    pub fn optional_u64(&mut self, key: &str) -> Option<u64> {
        match self.body.get(key) {
            None => None,
            Some(v) => match v.as_u64() {
                Some(n) => Some(n),
                None => {
                    self.errors
                        .push(FieldError::new(key, "must be a non-negative integer"));
                    None
                }
            },
        }
    }

    /// An optional finite non-negative number field with a default.
    pub fn optional_f64(&mut self, key: &str, default: f64) -> f64 {
        match self.body.get(key) {
            None => default,
            Some(v) => match v.as_f64() {
                Some(n) if n.is_finite() && n >= 0.0 => n,
                _ => {
                    self.errors
                        .push(FieldError::new(key, "must be a finite non-negative number"));
                    default
                }
            },
        }
    }

    /// An optional boolean field with a default.
    pub fn optional_bool(&mut self, key: &str, default: bool) -> bool {
        match self.body.get(key) {
            None => default,
            Some(v) => match v.as_bool() {
                Some(b) => b,
                None => {
                    self.errors.push(FieldError::new(key, "must be a boolean"));
                    default
                }
            },
        }
    }

    /// An optional string field.
    pub fn optional_str(&mut self, key: &str) -> Option<String> {
        match self.body.get(key) {
            None => None,
            Some(v) => match v.as_str() {
                Some(s) => Some(s.to_string()),
                None => {
                    self.errors.push(FieldError::new(key, "must be a string"));
                    None
                }
            },
        }
    }

    /// Whether the body carries `key` at all (for both-or-neither checks).
    pub fn has(&self, key: &str) -> bool {
        self.body.get(key).is_some()
    }

    /// Record an error against `field` from handler-level validation.
    pub fn reject(&mut self, field: &str, message: impl Into<String>) {
        self.errors.push(FieldError::new(field, message));
    }

    /// Reject fields outside `known` and return all accumulated errors
    /// (empty = the request is valid). Unknown fields report in key order —
    /// the body is a `BTreeMap`, so the order is deterministic.
    pub fn finish(mut self, known: &[&str]) -> Vec<FieldError> {
        if let Some(object) = self.body.as_object() {
            for key in object.keys() {
                if !known.contains(&key.as_str()) {
                    self.errors
                        .push(FieldError::new(key, "unknown field (check for typos)"));
                }
            }
        }
        self.errors
    }
}

/// The search-control fields shared by the four explainer endpoints.
pub const SEARCH_CONTROL_FIELDS: &[&str] = &[
    "eval_threads",
    "eval_parallel_threshold",
    "eval_exact",
    "deadline_ms",
    "max_evals",
    "max_size",
    "max_candidates",
    "explain_cache_bypass",
];

/// Parsed search controls: evaluation-engine knobs, enumeration limits,
/// and the request-lifecycle [`Budget`].
#[derive(Debug, Clone, Default)]
pub struct SearchControls {
    /// Candidate-evaluation knobs (`eval_threads`,
    /// `eval_parallel_threshold`, `eval_exact`).
    pub eval: EvalOptions,
    /// Candidate-enumeration limits (`max_size`, `max_candidates`), applied
    /// over the explainer defaults.
    pub search: SearchBudget,
    /// The request budget (`deadline_ms`, `max_evals`); unlimited when
    /// neither field is present.
    pub lifecycle: Budget,
    /// Skip the server's explanation cache for this request
    /// (`explain_cache_bypass`): neither read from it nor populate it.
    pub cache_bypass: bool,
}

impl SearchControls {
    /// Read the shared control fields off `p` (absent fields keep their
    /// defaults).
    pub fn parse(p: &mut FieldParser<'_>) -> Self {
        let mut eval = EvalOptions::default();
        if let Some(threads) = p.optional_u64("eval_threads") {
            eval.threads = threads as usize;
        }
        if let Some(threshold) = p.optional_u64("eval_parallel_threshold") {
            eval.parallel_threshold = threshold as usize;
        }
        eval.force_exact = p.optional_bool("eval_exact", eval.force_exact);

        let mut search = SearchBudget::default();
        if let Some(size) = p.optional_u64("max_size") {
            search.max_size = size as usize;
        }
        if let Some(candidates) = p.optional_u64("max_candidates") {
            search.max_candidates = candidates as usize;
        }

        let mut lifecycle = Budget::unlimited();
        if let Some(ms) = p.optional_u64("deadline_ms") {
            lifecycle = lifecycle.with_deadline_ms(ms);
        }
        if let Some(evals) = p.optional_u64("max_evals") {
            lifecycle = lifecycle.with_max_evals(evals as usize);
        }

        let cache_bypass = p.optional_bool("explain_cache_bypass", false);

        Self {
            eval,
            search,
            lifecycle,
            cache_bypass,
        }
    }
}

/// The corpus-selector fields accepted by every request.
pub const CORPUS_FIELDS: &[&str] = &["corpus", "generation"];

/// Corpus selector carried by every request: which registered corpus to
/// serve from, and optionally which pinned generation. Absent fields mean
/// "the default corpus, at whatever generation is live".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRef {
    /// Registered corpus name.
    pub corpus: String,
    /// Pinned generation; `None` reads the live snapshot.
    pub generation: Option<u64>,
}

impl Default for CorpusRef {
    fn default() -> Self {
        Self {
            corpus: DEFAULT_CORPUS.to_string(),
            generation: None,
        }
    }
}

impl CorpusRef {
    /// Read the `corpus` and `generation` fields off `p`.
    pub fn parse(p: &mut FieldParser<'_>) -> Self {
        let corpus = match p.optional_str("corpus") {
            Some(name) if name.is_empty() => {
                p.reject("corpus", "must be a non-empty string");
                DEFAULT_CORPUS.to_string()
            }
            Some(name) => name,
            None => DEFAULT_CORPUS.to_string(),
        };
        let generation = p.optional_u64("generation");
        Self { corpus, generation }
    }
}

macro_rules! known {
    ($($field:literal),* $(,)?) => {
        {
            const OWN: &[&str] = &[$($field),*];
            let mut all = OWN.to_vec();
            all.extend_from_slice(SEARCH_CONTROL_FIELDS);
            all.extend_from_slice(CORPUS_FIELDS);
            all
        }
    };
}

macro_rules! known_with_corpus {
    ($($field:literal),* $(,)?) => {
        {
            const OWN: &[&str] = &[$($field),*];
            let mut all = OWN.to_vec();
            all.extend_from_slice(CORPUS_FIELDS);
            all
        }
    };
}

/// `POST /api/v1/rank`.
#[derive(Debug, Clone)]
pub struct RankRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// Per-request retrieval strategy override
    /// (`auto` | `exhaustive` | `pruned` | `bmw` | `sharded`).
    pub search_strategy: Option<SearchStrategy>,
    /// Per-request shard-count override for the sharded path (0 = one per
    /// available core).
    pub search_shards: Option<usize>,
    /// Restrict scoring to one doc-hash partition (`partition_index` +
    /// `partition_count` in the body). The cluster router sets this on each
    /// fanout leg; plain clients normally omit both fields.
    pub partition: Option<PartitionSpec>,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl RankRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let search_strategy = match p.optional_str("search_strategy") {
            None => None,
            Some(s) => match SearchStrategy::parse(&s) {
                Some(strategy) => Some(strategy),
                None => {
                    p.reject(
                        "search_strategy",
                        "must be one of: auto, exhaustive, pruned, bmw, sharded",
                    );
                    None
                }
            },
        };
        let partition = match (
            p.optional_u64("partition_index"),
            p.optional_u64("partition_count"),
        ) {
            (None, None) => None,
            (Some(index), Some(count)) => {
                if count == 0 || count > u32::MAX as u64 {
                    p.reject("partition_count", "must be between 1 and 2^32-1");
                    None
                } else if index >= count {
                    p.reject("partition_index", "must be less than partition_count");
                    None
                } else {
                    PartitionSpec::new(index as u32, count as u32)
                }
            }
            (Some(_), None) => {
                p.reject("partition_count", "required when partition_index is set");
                None
            }
            (None, Some(_)) => {
                p.reject("partition_index", "required when partition_count is set");
                None
            }
        };
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            search_strategy,
            search_shards: p.optional_u64("search_shards").map(|s| s as usize),
            partition,
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus![
            "query",
            "k",
            "search_strategy",
            "search_shards",
            "partition_index",
            "partition_count",
        ]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/sentence-removal`.
#[derive(Debug, Clone)]
pub struct SentenceRemovalRequest {
    /// The query.
    pub query: String,
    /// Ranking depth (the document must drop past `k`).
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Maximum explanations to return.
    pub n: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
    /// Shared search controls.
    pub controls: SearchControls,
}

impl SentenceRemovalRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            corpus: CorpusRef::parse(&mut p),
            controls: SearchControls::parse(&mut p),
        };
        let errors = p.finish(&known!["query", "k", "doc", "n"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/query-augmentation`.
#[derive(Debug, Clone)]
pub struct QueryAugmentationRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Maximum explanations to return.
    pub n: usize,
    /// Rank the document must reach (`new_rank <= threshold`).
    pub threshold: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
    /// Shared search controls.
    pub controls: SearchControls,
}

impl QueryAugmentationRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            threshold: p.optional_usize("threshold", 1),
            corpus: CorpusRef::parse(&mut p),
            controls: SearchControls::parse(&mut p),
        };
        let errors = p.finish(&known!["query", "k", "doc", "n", "threshold"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/query-reduction`.
#[derive(Debug, Clone)]
pub struct QueryReductionRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Maximum explanations to return.
    pub n: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
    /// Shared search controls.
    pub controls: SearchControls,
}

impl QueryReductionRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            corpus: CorpusRef::parse(&mut p),
            controls: SearchControls::parse(&mut p),
        };
        let errors = p.finish(&known!["query", "k", "doc", "n"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/term-removal`.
#[derive(Debug, Clone)]
pub struct TermRemovalRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Maximum explanations to return.
    pub n: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
    /// Shared search controls.
    pub controls: SearchControls,
}

impl TermRemovalRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            corpus: CorpusRef::parse(&mut p),
            controls: SearchControls::parse(&mut p),
        };
        let errors = p.finish(&known!["query", "k", "doc", "n"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/feature_attribution`.
#[derive(Debug, Clone)]
pub struct FeatureAttributionRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Perturbed document variants to draw and score.
    pub samples: usize,
    /// Mask-sampler seed; the payload is byte-identical per seed.
    pub seed: u64,
    /// Maximum attributions returned.
    pub top_m: usize,
    /// Ridge regularisation strength for the surrogate fit.
    pub lambda: f64,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
    /// Shared search controls.
    pub controls: SearchControls,
}

impl FeatureAttributionRequest {
    /// Parse and fully validate the request body. Defaults mirror
    /// `credence_core::lime::FeatureAttributionConfig::default()`.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            samples: p.optional_usize("samples", 256),
            seed: p.optional_u64("seed").unwrap_or(42),
            top_m: p.optional_usize("top_m", 10),
            lambda: p.optional_f64("lambda", 1e-3),
            corpus: CorpusRef::parse(&mut p),
            controls: SearchControls::parse(&mut p),
        };
        let errors = p.finish(&known![
            "query", "k", "doc", "samples", "seed", "top_m", "lambda"
        ]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/doc2vec-nearest`.
#[derive(Debug, Clone)]
pub struct Doc2VecNearestRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Neighbours to return.
    pub n: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl Doc2VecNearestRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus!["query", "k", "doc", "n"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/cosine-sampled`.
#[derive(Debug, Clone)]
pub struct CosineSampledRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// Neighbours to return.
    pub n: usize,
    /// Score-vector sample override.
    pub samples: Option<usize>,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl CosineSampledRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            n: p.optional_usize("n", 1),
            samples: p.optional_u64("samples").map(|s| s as usize),
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus!["query", "k", "doc", "n", "samples"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/topics`.
#[derive(Debug, Clone)]
pub struct TopicsRequest {
    /// The query.
    pub query: String,
    /// Ranking depth (LDA fits over the top-k).
    pub k: usize,
    /// Topics to fit.
    pub num_topics: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl TopicsRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            num_topics: p.optional_usize("num_topics", 3),
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus!["query", "k", "num_topics"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/snippet`.
#[derive(Debug, Clone)]
pub struct SnippetRequest {
    /// The query whose terms are highlighted.
    pub query: String,
    /// The document id.
    pub doc: usize,
    /// Snippet window, in tokens.
    pub window: usize,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl SnippetRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            query: p.require_str("query"),
            doc: p.require_usize("doc"),
            window: p.optional_usize("window", 24),
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus!["query", "doc", "window"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/explain/nearest-to-text`.
#[derive(Debug, Clone)]
pub struct NearestToTextRequest {
    /// Free text to embed.
    pub text: String,
    /// Neighbours to return.
    pub n: usize,
    /// Exclude the top-k for this query (both-or-neither with `k`).
    pub exclude: Option<(String, usize)>,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl NearestToTextRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let text = p.require_str("text");
        let n = p.optional_usize("n", 3);
        let exclude = match (p.has("query"), p.has("k")) {
            (false, false) => None,
            (true, true) => {
                let query = p.require_str("query");
                let k = p.require_usize("k");
                Some((query, k))
            }
            (true, false) => {
                p.reject("k", "required whenever 'query' is present");
                None
            }
            (false, true) => {
                p.reject("query", "required whenever 'k' is present");
                None
            }
        };
        let out = Self {
            text,
            n,
            exclude,
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus!["text", "n", "query", "k"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/rerank` (the builder's free-form perturbation test).
#[derive(Debug, Clone)]
pub struct RerankRequest {
    /// The query.
    pub query: String,
    /// Ranking depth.
    pub k: usize,
    /// The instance document id.
    pub doc: usize,
    /// The edited body to re-rank.
    pub body: String,
    /// Request budget (`deadline_ms`; the builder runs exactly one
    /// evaluation, so `max_evals` does not apply here).
    pub lifecycle: Budget,
    /// Corpus selector (`corpus`, optional pinned `generation`).
    pub corpus: CorpusRef,
}

impl RerankRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let mut lifecycle = Budget::unlimited();
        if let Some(ms) = p.optional_u64("deadline_ms") {
            lifecycle = lifecycle.with_deadline_ms(ms);
        }
        let out = Self {
            query: p.require_str("query"),
            k: p.require_usize("k"),
            doc: p.require_usize("doc"),
            body: p.require_str("body"),
            lifecycle,
            corpus: CorpusRef::parse(&mut p),
        };
        let errors = p.finish(&known_with_corpus![
            "query",
            "k",
            "doc",
            "body",
            "deadline_ms"
        ]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// An explanation request admitted into the async job queue: one of the
/// five explainers, wrapping the exact request struct the synchronous
/// endpoint parses. Executing a `JobRequest` therefore goes through the
/// same handler and produces the same payload bit-for-bit.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// An `explain/sentence-removal` search.
    SentenceRemoval(SentenceRemovalRequest),
    /// An `explain/query-augmentation` search.
    QueryAugmentation(QueryAugmentationRequest),
    /// An `explain/query-reduction` search.
    QueryReduction(QueryReductionRequest),
    /// An `explain/term-removal` search.
    TermRemoval(TermRemovalRequest),
    /// An `explain/feature_attribution` surrogate fit.
    FeatureAttribution(FeatureAttributionRequest),
}

impl JobRequest {
    /// The endpoint names accepted in a job submission's `endpoint` field.
    pub const ENDPOINTS: [&'static str; 5] = [
        "sentence-removal",
        "query-augmentation",
        "query-reduction",
        "term-removal",
        "feature_attribution",
    ];

    /// The endpoint name this job targets.
    pub fn endpoint(&self) -> &'static str {
        match self {
            JobRequest::SentenceRemoval(_) => "sentence-removal",
            JobRequest::QueryAugmentation(_) => "query-augmentation",
            JobRequest::QueryReduction(_) => "query-reduction",
            JobRequest::TermRemoval(_) => "term-removal",
            JobRequest::FeatureAttribution(_) => "feature_attribution",
        }
    }

    /// The request's lifecycle [`Budget`], for the job queue to install its
    /// cancel flag into.
    pub fn lifecycle_mut(&mut self) -> &mut Budget {
        match self {
            JobRequest::SentenceRemoval(r) => &mut r.controls.lifecycle,
            JobRequest::QueryAugmentation(r) => &mut r.controls.lifecycle,
            JobRequest::QueryReduction(r) => &mut r.controls.lifecycle,
            JobRequest::TermRemoval(r) => &mut r.controls.lifecycle,
            JobRequest::FeatureAttribution(r) => &mut r.controls.lifecycle,
        }
    }

    /// The corpus this job targets, for snapshot pinning at submit time.
    pub fn corpus_ref(&self) -> &CorpusRef {
        match self {
            JobRequest::SentenceRemoval(r) => &r.corpus,
            JobRequest::QueryAugmentation(r) => &r.corpus,
            JobRequest::QueryReduction(r) => &r.corpus,
            JobRequest::TermRemoval(r) => &r.corpus,
            JobRequest::FeatureAttribution(r) => &r.corpus,
        }
    }
}

/// `POST /api/v1/jobs`: an `{endpoint, request}` envelope whose `request`
/// object is parsed by the named endpoint's own request struct.
#[derive(Debug, Clone)]
pub struct JobSubmitRequest {
    /// The parsed explanation request to enqueue.
    pub request: JobRequest,
}

impl JobSubmitRequest {
    /// Parse and fully validate the submission envelope. Inner request
    /// errors are reported with a `request.`-prefixed field path.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let endpoint = p.require_str("endpoint");
        let known = JobRequest::ENDPOINTS.contains(&endpoint.as_str());
        if body.get("endpoint").and_then(Value::as_str).is_some() && !known {
            p.reject(
                "endpoint",
                format!("must be one of: {}", JobRequest::ENDPOINTS.join(", ")),
            );
        }
        let inner = match body.get("request") {
            Some(v) if v.as_object().is_some() => Some(v),
            Some(_) => {
                p.reject("request", "must be a JSON object");
                None
            }
            None => {
                p.reject("request", "missing required object field");
                None
            }
        };
        let request = match (known, inner) {
            (true, Some(inner)) => {
                let parsed =
                    match endpoint.as_str() {
                        "sentence-removal" => {
                            SentenceRemovalRequest::parse(inner).map(JobRequest::SentenceRemoval)
                        }
                        "query-augmentation" => QueryAugmentationRequest::parse(inner)
                            .map(JobRequest::QueryAugmentation),
                        "query-reduction" => {
                            QueryReductionRequest::parse(inner).map(JobRequest::QueryReduction)
                        }
                        "feature_attribution" => FeatureAttributionRequest::parse(inner)
                            .map(JobRequest::FeatureAttribution),
                        _ => TermRemovalRequest::parse(inner).map(JobRequest::TermRemoval),
                    };
                match parsed {
                    Ok(request) => Some(request),
                    Err(errors) => {
                        for e in errors {
                            p.reject(&format!("request.{}", e.field), e.message);
                        }
                        None
                    }
                }
            }
            _ => None,
        };
        let errors = p.finish(&["endpoint", "request"]);
        match (request, errors.is_empty()) {
            (Some(request), true) => Ok(Self { request }),
            (_, _) => Err(errors),
        }
    }
}

/// Parse one `{name?, title?, body}` document object; errors are reported
/// against `prefix.<field>`.
fn parse_doc_object(p: &mut FieldParser<'_>, prefix: &str, item: &Value) -> Option<Document> {
    if item.as_object().is_none() {
        p.reject(prefix, "must be a JSON object");
        return None;
    }
    let mut dp = FieldParser::new(item);
    let doc = Document::new(
        dp.optional_str("name").unwrap_or_default(),
        dp.optional_str("title").unwrap_or_default(),
        dp.require_str("body"),
    );
    let errors = dp.finish(&["name", "title", "body"]);
    if errors.is_empty() {
        Some(doc)
    } else {
        for e in errors {
            p.reject(&format!("{prefix}.{}", e.field), e.message);
        }
        None
    }
}

/// `PUT /api/v1/corpora/{name}`: register or hot-swap a corpus.
#[derive(Debug, Clone)]
pub struct CorpusPutRequest {
    /// The documents to index as generation 0.
    pub docs: Vec<Document>,
}

impl CorpusPutRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let mut docs = Vec::new();
        match body.get("docs") {
            Some(value) => match value.as_array() {
                Some(items) => {
                    if items.is_empty() {
                        p.reject("docs", "must contain at least one document");
                    }
                    for (i, item) in items.iter().enumerate() {
                        if let Some(doc) = parse_doc_object(&mut p, &format!("docs[{i}]"), item) {
                            docs.push(doc);
                        }
                    }
                    let mut seen = std::collections::BTreeSet::new();
                    for (i, doc) in docs.iter().enumerate() {
                        if !doc.name.is_empty() && !seen.insert(doc.name.as_str()) {
                            p.reject(
                                &format!("docs[{i}].name"),
                                "duplicate document name in corpus",
                            );
                        }
                    }
                }
                None => p.reject("docs", "must be an array of documents"),
            },
            None => p.reject("docs", "missing required array field"),
        }
        let errors = p.finish(&["docs"]);
        if errors.is_empty() {
            Ok(Self { docs })
        } else {
            Err(errors)
        }
    }
}

/// `POST /api/v1/corpora/{name}/docs`: add a new document (409 when the
/// name already exists).
#[derive(Debug, Clone)]
pub struct DocAddRequest {
    /// The document; `name` is required so the add/exists contract is
    /// well-defined.
    pub doc: Document,
    /// When true, the response waits for the staged op to fold into a
    /// published generation (read-your-write); otherwise it returns 202
    /// with the staging ticket.
    pub refresh: bool,
}

impl DocAddRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let name = p.require_str("name");
        if p.has("name") && name.is_empty() {
            p.reject("name", "must be a non-empty string");
        }
        let out = Self {
            doc: Document::new(
                name,
                p.optional_str("title").unwrap_or_default(),
                p.require_str("body"),
            ),
            refresh: p.optional_bool("refresh", false),
        };
        let errors = p.finish(&["name", "title", "body", "refresh"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// `PUT /api/v1/corpora/{name}/docs/{id}`: upsert the document named by
/// the path.
#[derive(Debug, Clone)]
pub struct DocPutRequest {
    /// Display title (not scored).
    pub title: String,
    /// The body text.
    pub body: String,
    /// Wait for the fold before answering (see [`DocAddRequest::refresh`]).
    pub refresh: bool,
}

impl DocPutRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            title: p.optional_str("title").unwrap_or_default(),
            body: p.require_str("body"),
            refresh: p.optional_bool("refresh", false),
        };
        let errors = p.finish(&["title", "body", "refresh"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

/// Optional `{refresh}` body for `DELETE .../docs/{id}` (an absent or
/// empty body means `refresh: false`).
#[derive(Debug, Clone, Default)]
pub struct RefreshRequest {
    /// Wait for the fold before answering.
    pub refresh: bool,
}

impl RefreshRequest {
    /// Parse and fully validate the request body.
    pub fn parse(body: &Value) -> Result<Self, Vec<FieldError>> {
        let mut p = FieldParser::new(body);
        let out = Self {
            refresh: p.optional_bool("refresh", false),
        };
        let errors = p.finish(&["refresh"]);
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_json::parse;

    fn value(text: &str) -> Value {
        parse(text).unwrap()
    }

    #[test]
    fn valid_rank_request_parses() {
        let req = RankRequest::parse(&value(r#"{"query": "covid", "k": 3}"#)).unwrap();
        assert_eq!(req.query, "covid");
        assert_eq!(req.k, 3);
    }

    #[test]
    fn rank_request_parses_retrieval_overrides() {
        let req = RankRequest::parse(&value(
            r#"{"query": "q", "k": 3, "search_strategy": "pruned", "search_shards": 4}"#,
        ))
        .unwrap();
        assert_eq!(req.search_strategy, Some(SearchStrategy::Pruned));
        assert_eq!(req.search_shards, Some(4));
        let bmw = RankRequest::parse(&value(
            r#"{"query": "q", "k": 3, "search_strategy": "bmw"}"#,
        ))
        .unwrap();
        assert_eq!(bmw.search_strategy, Some(SearchStrategy::BlockMax));
        let plain = RankRequest::parse(&value(r#"{"query": "q", "k": 3}"#)).unwrap();
        assert_eq!(plain.search_strategy, None);
        assert_eq!(plain.search_shards, None);
        let errs = RankRequest::parse(&value(
            r#"{"query": "q", "k": 3, "search_strategy": "fastest"}"#,
        ))
        .unwrap_err();
        assert_eq!(errs[0].field, "search_strategy");
    }

    #[test]
    fn all_invalid_fields_reported_at_once() {
        let errs = RankRequest::parse(&value(r#"{"query": 7, "k": "three"}"#)).unwrap_err();
        assert_eq!(errs.len(), 2);
        let fields: Vec<&str> = errs.iter().map(|e| e.field.as_str()).collect();
        assert!(fields.contains(&"query"));
        assert!(fields.contains(&"k"));
    }

    #[test]
    fn unknown_fields_are_rejected_by_name() {
        let errs =
            RankRequest::parse(&value(r#"{"query": "q", "k": 3, "kk": 1, "zz": 2}"#)).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].field, "kk");
        assert_eq!(errs[1].field, "zz");
        assert!(errs[0].message.contains("unknown"));
    }

    #[test]
    fn missing_and_unknown_errors_combine() {
        let errs =
            SentenceRemovalRequest::parse(&value(r#"{"query": "q", "bogus": 1}"#)).unwrap_err();
        let fields: Vec<&str> = errs.iter().map(|e| e.field.as_str()).collect();
        assert!(fields.contains(&"k"));
        assert!(fields.contains(&"doc"));
        assert!(fields.contains(&"bogus"));
    }

    #[test]
    fn search_controls_parse_all_knobs() {
        let req = SentenceRemovalRequest::parse(&value(
            r#"{"query": "q", "k": 3, "doc": 2, "n": 2,
                "eval_threads": 4, "eval_parallel_threshold": 8, "eval_exact": true,
                "deadline_ms": 60000, "max_evals": 50, "max_size": 3, "max_candidates": 12}"#,
        ))
        .unwrap();
        assert_eq!(req.controls.eval.threads, 4);
        assert_eq!(req.controls.eval.parallel_threshold, 8);
        assert!(req.controls.eval.force_exact);
        assert_eq!(req.controls.search.max_size, 3);
        assert_eq!(req.controls.search.max_candidates, 12);
        assert_eq!(req.controls.lifecycle.max_evals, Some(50));
        assert!(req.controls.lifecycle.deadline.is_some());
    }

    #[test]
    fn absent_controls_mean_unlimited_budget_and_defaults() {
        let req =
            SentenceRemovalRequest::parse(&value(r#"{"query": "q", "k": 3, "doc": 2}"#)).unwrap();
        assert!(req.controls.lifecycle.is_unlimited());
        assert_eq!(req.controls.eval, EvalOptions::default());
        assert_eq!(req.n, 1);
    }

    #[test]
    fn negative_integers_are_invalid() {
        let errs = RankRequest::parse(&value(r#"{"query": "q", "k": -1}"#)).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].field, "k");
    }

    #[test]
    fn nearest_to_text_requires_query_and_k_together() {
        let ok = NearestToTextRequest::parse(&value(r#"{"text": "t", "n": 2}"#)).unwrap();
        assert!(ok.exclude.is_none());
        let ok = NearestToTextRequest::parse(&value(r#"{"text": "t", "query": "covid", "k": 3}"#))
            .unwrap();
        assert_eq!(ok.exclude, Some(("covid".to_string(), 3)));
        let errs =
            NearestToTextRequest::parse(&value(r#"{"text": "t", "query": "covid"}"#)).unwrap_err();
        assert_eq!(errs[0].field, "k");
    }

    #[test]
    fn rerank_accepts_a_deadline() {
        let req = RerankRequest::parse(&value(
            r#"{"query": "q", "k": 3, "doc": 2, "body": "edited", "deadline_ms": 0}"#,
        ))
        .unwrap();
        assert!(req.lifecycle.deadline.is_some());
        let errs = RerankRequest::parse(&value(r#"{"query": "q", "k": 3, "doc": 2}"#)).unwrap_err();
        assert_eq!(errs[0].field, "body");
    }
}
