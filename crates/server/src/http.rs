//! Minimal HTTP/1.1 message handling.
//!
//! Supports exactly what the CREDENCE API needs: GET/POST, header parsing,
//! `Content-Length` bodies (capped), and `Connection: close` responses.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted request body, in bytes.
pub const MAX_BODY: usize = 4 * 1024 * 1024;
/// Maximum accepted header section, in bytes.
pub const MAX_HEADER: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (no scheme/host), percent-decoding NOT applied — the
    /// CREDENCE routes use plain ASCII segments.
    pub path: String,
    /// Header map with lowercase keys.
    pub headers: HashMap<String, String>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, when valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// HTTP-level parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived.
    UnexpectedEof,
    /// The request line or a header was malformed.
    Malformed(&'static str),
    /// Body or header section exceeded the configured limits.
    TooLarge,
    /// Underlying I/O failure (message only, for logging).
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge => write!(f, "request exceeds size limits"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one HTTP request from a stream.
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut header_bytes = 0usize;

    let n = reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        return Err(HttpError::UnexpectedEof);
    }
    header_bytes += n;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = HashMap::new();
    loop {
        let mut hline = String::new();
        let n = reader
            .read_line(&mut hline)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER {
            return Err(HttpError::TooLarge);
        }
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length = headers
        .get("content-length")
        .map(|v| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::Malformed("invalid content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| HttpError::UnexpectedEof)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type of the body.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written after `content-type`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An HTML page.
    pub fn html(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/html; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Attach an extra response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// The value of an extra header, when set (exact, lowercase names).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serialise and write the response, `Connection: close` semantics.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
            self.status, reason, self.content_type
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(
            w,
            "content-length: {}\r\nconnection: close\r\n\r\n",
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(raw.as_bytes())
    }

    #[test]
    fn parses_get() {
        let req = parse("GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"query":"covid"}"#;
        let raw = format!(
            "POST /rank HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8(), Some(body));
    }

    #[test]
    fn header_names_lowercased() {
        let req = parse("GET / HTTP/1.1\r\nX-THING: Value\r\n\r\n").unwrap();
        assert_eq!(
            req.headers.get("x-thing").map(String::as_str),
            Some("Value")
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse(""), Err(HttpError::UnexpectedEof)));
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn truncated_body_is_eof() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::UnexpectedEof)));
    }

    #[test]
    fn response_serialises() {
        let mut out = Vec::new();
        Response::json(200, r#"{"ok":true}"#)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with(r#"{"ok":true}"#));
    }

    #[test]
    fn extra_headers_serialised_before_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("deprecation", "true")
            .with_header("link", "</api/v1/rank>; rel=\"successor-version\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("deprecation: true\r\n"));
        assert!(text.contains("link: </api/v1/rank>; rel=\"successor-version\"\r\n"));
        let headers = text.split("\r\n\r\n").next().unwrap();
        assert!(headers.contains("deprecation"));
    }

    #[test]
    fn header_lookup_finds_set_headers() {
        let resp = Response::json(200, "{}").with_header("deprecation", "true");
        assert_eq!(resp.header("deprecation"), Some("true"));
        assert_eq!(resp.header("link"), None);
    }

    #[test]
    fn response_status_reasons() {
        for (status, reason) in [
            (404, "Not Found"),
            (422, "Unprocessable Entity"),
            (599, "Unknown"),
        ] {
            let mut out = Vec::new();
            Response::text(status, "x").write_to(&mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(reason), "{status} should say {reason}");
        }
    }
}
