//! UMass topic coherence (Mimno et al. 2011).
//!
//! Coherence scores a topic's top-word list by how often word pairs co-occur
//! in the corpus: `sum over pairs (i<j) of ln((D(wi, wj) + 1) / D(wj))`,
//! where `D(w)` counts documents containing `w`. Closer to zero = more
//! coherent. We use it to verify that LDA over the ranked top-k documents
//! produces browsable, non-random term clusters.

use std::collections::HashSet;

/// UMass coherence of an ordered top-word list over `docs`.
///
/// Returns 0.0 for lists with fewer than two words. Words never occurring in
/// `docs` contribute the maximally incoherent pair value via smoothing.
pub fn umass_coherence(top_words: &[usize], docs: &[Vec<usize>]) -> f64 {
    if top_words.len() < 2 {
        return 0.0;
    }
    let doc_sets: Vec<HashSet<usize>> = docs.iter().map(|d| d.iter().copied().collect()).collect();
    let df = |w: usize| doc_sets.iter().filter(|s| s.contains(&w)).count();
    let co_df = |a: usize, b: usize| {
        doc_sets
            .iter()
            .filter(|s| s.contains(&a) && s.contains(&b))
            .count()
    };
    let mut score = 0.0;
    for j in 1..top_words.len() {
        let dj = df(top_words[j]);
        if dj == 0 {
            // Smooth a never-seen word as if it occurred once, alone:
            // every pair contributes ln(1/1) with a penalty of ln(1/2).
            score -= j as f64 * (2.0f64).ln();
            continue;
        }
        for &wi in &top_words[..j] {
            let co = co_df(wi, top_words[j]);
            score += ((co as f64 + 1.0) / dj as f64).ln();
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_words_beat_incoherent() {
        // words 0,1 always co-occur; word 2 never appears with them.
        let docs = vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]];
        let coherent = umass_coherence(&[0, 1], &docs);
        let incoherent = umass_coherence(&[0, 2], &docs);
        assert!(
            coherent > incoherent,
            "co-occurring pair {coherent} must beat disjoint pair {incoherent}"
        );
    }

    #[test]
    fn single_word_is_zero() {
        let docs = vec![vec![0, 1]];
        assert_eq!(umass_coherence(&[0], &docs), 0.0);
        assert_eq!(umass_coherence(&[], &docs), 0.0);
    }

    #[test]
    fn perfect_cooccurrence_near_zero() {
        // Both words in every document: each pair contributes ln((D+1)/D) > 0.
        let docs: Vec<Vec<usize>> = (0..10).map(|_| vec![0, 1]).collect();
        let c = umass_coherence(&[0, 1], &docs);
        assert!(c > 0.0 && c < 0.2, "got {c}");
    }

    #[test]
    fn empty_corpus_is_finite() {
        let c = umass_coherence(&[0, 1, 2], &[]);
        assert!(c.is_finite());
    }
}
