//! Topic-modelling substrate for the CREDENCE reproduction.
//!
//! CREDENCE's *Browse Topics* feature (§II-B, §III-C) runs LDA over the
//! currently ranked top-k documents "allowing users to browse clusters of
//! terms found in selected documents, for the purpose of discovering
//! important terms that may influence relevance". The original system used
//! scikit-learn's LDA; this crate implements LDA from scratch with the
//! collapsed Gibbs sampler (Griffiths & Steyvers 2004):
//!
//! * [`lda`] — the sampler and fitted model,
//! * [`coherence`] — UMass topic coherence for quality checks,
//! * [`summary`] — human-readable topic summaries resolved through a
//!   [`credence_text::Vocabulary`].

#![warn(missing_docs)]

pub mod coherence;
pub mod lda;
pub mod selection;
pub mod summary;

pub use coherence::umass_coherence;
pub use lda::{LdaConfig, LdaModel};
pub use selection::{select_num_topics, TopicSelection};
pub use summary::{summarize_topics, TopicSummary};
