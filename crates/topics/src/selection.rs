//! Topic-count selection by coherence.
//!
//! The CREDENCE UI asks the user for a topic count; this module picks a
//! sensible default automatically by fitting LDA across a range of `K` and
//! choosing the count with the best mean UMass coherence of its topics'
//! top words — the standard model-selection recipe for browsable topics.

use crate::coherence::umass_coherence;
use crate::lda::{LdaConfig, LdaModel};

/// The outcome of a selection sweep.
#[derive(Debug, Clone)]
pub struct TopicSelection {
    /// The chosen number of topics.
    pub best_k: usize,
    /// `(k, mean coherence)` for every candidate, in ascending `k`.
    pub scores: Vec<(usize, f64)>,
    /// The fitted model for `best_k`.
    pub model: LdaModel,
}

/// Fit LDA for every `k` in `k_range` and return the most coherent model.
///
/// `top_words` controls how many words per topic enter the coherence
/// computation (10 is conventional). Panics when the range is empty.
pub fn select_num_topics(
    docs: &[Vec<usize>],
    vocab_size: usize,
    k_range: std::ops::RangeInclusive<usize>,
    top_words: usize,
    base: &LdaConfig,
) -> TopicSelection {
    assert!(!k_range.is_empty(), "empty candidate range");
    let mut scores = Vec::new();
    let mut best: Option<(f64, usize, LdaModel)> = None;
    for k in k_range {
        let model = LdaModel::fit(
            docs,
            vocab_size,
            &LdaConfig {
                num_topics: k,
                ..base.clone()
            },
        );
        let mean_coherence = if k == 0 {
            f64::NEG_INFINITY
        } else {
            (0..k)
                .map(|t| {
                    let words: Vec<usize> = model
                        .top_words(t, top_words)
                        .into_iter()
                        .map(|(w, _)| w)
                        .collect();
                    umass_coherence(&words, docs)
                })
                .sum::<f64>()
                / k as f64
        };
        scores.push((k, mean_coherence));
        let better = match &best {
            None => true,
            Some((best_score, _, _)) => mean_coherence > *best_score,
        };
        if better {
            best = Some((mean_coherence, k, model));
        }
    }
    let (_, best_k, model) = best.expect("non-empty range yields a model");
    TopicSelection {
        best_k,
        scores,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus with exactly two word clusters.
    fn two_cluster_docs() -> (Vec<Vec<usize>>, usize) {
        let mut docs = Vec::new();
        for i in 0..30 {
            let base = if i % 2 == 0 { 0 } else { 5 };
            docs.push((0..20).map(|j| base + (i + j) % 5).collect());
        }
        (docs, 10)
    }

    fn base() -> LdaConfig {
        LdaConfig {
            iterations: 60,
            ..Default::default()
        }
    }

    #[test]
    fn selection_returns_scores_for_every_k() {
        let (docs, v) = two_cluster_docs();
        let sel = select_num_topics(&docs, v, 1..=4, 5, &base());
        assert_eq!(sel.scores.len(), 4);
        assert!(sel.scores.iter().any(|&(k, _)| k == sel.best_k));
        assert_eq!(sel.model.num_topics(), sel.best_k);
    }

    #[test]
    fn two_clusters_prefer_small_k_over_fragmentation() {
        // With two clean clusters, very large K fragments topics and hurts
        // coherence; the winner should be small.
        let (docs, v) = two_cluster_docs();
        let sel = select_num_topics(&docs, v, 1..=6, 5, &base());
        assert!(
            sel.best_k <= 3,
            "expected a small topic count, got {} ({:?})",
            sel.best_k,
            sel.scores
        );
    }

    #[test]
    fn selection_is_deterministic() {
        let (docs, v) = two_cluster_docs();
        let a = select_num_topics(&docs, v, 1..=3, 5, &base());
        let b = select_num_topics(&docs, v, 1..=3, 5, &base());
        assert_eq!(a.best_k, b.best_k);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    #[should_panic(expected = "empty candidate range")]
    fn empty_range_panics() {
        let (docs, v) = two_cluster_docs();
        #[allow(clippy::reversed_empty_ranges)]
        let _ = select_num_topics(&docs, v, 3..=1, 5, &base());
    }

    #[test]
    fn single_candidate_range() {
        let (docs, v) = two_cluster_docs();
        let sel = select_num_topics(&docs, v, 2..=2, 5, &base());
        assert_eq!(sel.best_k, 2);
    }
}
