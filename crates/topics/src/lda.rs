//! Latent Dirichlet Allocation via collapsed Gibbs sampling
//! (Griffiths & Steyvers 2004).
//!
//! The sampler maintains the standard count matrices — topic×word, doc×topic,
//! per-topic totals — and resamples every token's topic assignment from the
//! collapsed conditional
//!
//! ```text
//! p(z = t | rest) ∝ (n_dt + α) · (n_tw + β) / (n_t + Vβ)
//! ```
//!
//! Deterministic under a seed; count invariants are asserted in tests and
//! exposed for property testing.

use credence_rng::rngs::StdRng;
use credence_rng::{Rng, SeedableRng};

/// Hyper-parameters for LDA.
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 5,
            alpha: 0.1,
            beta: 0.01,
            iterations: 200,
            seed: 42,
        }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// `K × V` topic-word counts, row-major.
    topic_word: Vec<u32>,
    /// `D × K` doc-topic counts, row-major.
    doc_topic: Vec<u32>,
    /// Per-topic totals (length `K`).
    topic_total: Vec<u32>,
    /// Per-document lengths.
    doc_len: Vec<u32>,
}

impl LdaModel {
    /// Fit LDA on `docs` (word-id sequences over `0..vocab_size`).
    ///
    /// Empty documents are allowed and simply contribute nothing.
    pub fn fit(docs: &[Vec<usize>], vocab_size: usize, config: &LdaConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        let k = config.num_topics;
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut topic_word = vec![0u32; k * vocab_size];
        let mut doc_topic = vec![0u32; docs.len() * k];
        let mut topic_total = vec![0u32; k];
        let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(docs.len());

        // Random initialisation.
        for (d, doc) in docs.iter().enumerate() {
            let mut z = Vec::with_capacity(doc.len());
            for &w in doc {
                debug_assert!(w < vocab_size, "word id {w} out of range");
                let t = rng.gen_range(0..k);
                z.push(t);
                topic_word[t * vocab_size + w] += 1;
                doc_topic[d * k + t] += 1;
                topic_total[t] += 1;
            }
            assignments.push(z);
        }

        let vbeta = vocab_size as f64 * config.beta;
        let mut probs = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i];
                    // Remove current assignment.
                    topic_word[old * vocab_size + w] -= 1;
                    doc_topic[d * k + old] -= 1;
                    topic_total[old] -= 1;

                    // Collapsed conditional, accumulated in place so the
                    // categorical draw is one binary search over `probs`.
                    let mut acc = 0.0;
                    for (t, p) in probs.iter_mut().enumerate() {
                        let val = (doc_topic[d * k + t] as f64 + config.alpha)
                            * (topic_word[t * vocab_size + w] as f64 + config.beta)
                            / (topic_total[t] as f64 + vbeta);
                        acc += val;
                        *p = acc;
                    }
                    let new = credence_rng::weighted::sample_cumulative(&mut rng, &probs)
                        .expect("positive mass: alpha/beta priors are positive");

                    assignments[d][i] = new;
                    topic_word[new * vocab_size + w] += 1;
                    doc_topic[d * k + new] += 1;
                    topic_total[new] += 1;
                }
            }
        }

        Self {
            config: config.clone(),
            vocab_size,
            topic_word,
            doc_topic,
            topic_total,
            doc_len: docs.iter().map(|d| d.len() as u32).collect(),
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Vocabulary size the model was fitted against.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Smoothed topic-word distribution `phi[t][w]`.
    pub fn phi(&self, topic: usize, word: usize) -> f64 {
        (self.topic_word[topic * self.vocab_size + word] as f64 + self.config.beta)
            / (self.topic_total[topic] as f64 + self.vocab_size as f64 * self.config.beta)
    }

    /// Smoothed document-topic distribution `theta[d][t]`.
    pub fn theta(&self, doc: usize, topic: usize) -> f64 {
        let k = self.config.num_topics;
        (self.doc_topic[doc * k + topic] as f64 + self.config.alpha)
            / (self.doc_len[doc] as f64 + k as f64 * self.config.alpha)
    }

    /// The `n` highest-probability words of a topic, best first,
    /// ties broken by word id.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(usize, f64)> {
        let mut words: Vec<(usize, f64)> = (0..self.vocab_size)
            .map(|w| (w, self.phi(topic, w)))
            .collect();
        words.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        words.truncate(n);
        words
    }

    /// The dominant topic of a document.
    pub fn dominant_topic(&self, doc: usize) -> usize {
        (0..self.config.num_topics)
            .max_by(|&a, &b| {
                self.theta(doc, a)
                    .partial_cmp(&self.theta(doc, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    /// Per-word log-likelihood of held-in data under the fitted model
    /// (higher is better); used to sanity-check convergence.
    pub fn log_likelihood(&self, docs: &[Vec<usize>]) -> f64 {
        let mut ll = 0.0;
        let mut tokens = 0usize;
        for (d, doc) in docs.iter().enumerate() {
            for &w in doc {
                let p: f64 = (0..self.config.num_topics)
                    .map(|t| self.theta(d, t) * self.phi(t, w))
                    .sum();
                ll += p.max(1e-300).ln();
                tokens += 1;
            }
        }
        if tokens == 0 {
            0.0
        } else {
            ll / tokens as f64
        }
    }

    /// Perplexity = exp(−per-word log-likelihood); lower is better.
    pub fn perplexity(&self, docs: &[Vec<usize>]) -> f64 {
        (-self.log_likelihood(docs)).exp()
    }

    /// Count-invariant check: total assignments equal corpus token count and
    /// the three count matrices are mutually consistent. Exposed for
    /// property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.config.num_topics;
        let total_tokens: u64 = self.doc_len.iter().map(|&l| l as u64).sum();
        let tt: u64 = self.topic_total.iter().map(|&c| c as u64).sum();
        if tt != total_tokens {
            return Err(format!("topic totals {tt} != corpus tokens {total_tokens}"));
        }
        for t in 0..k {
            let row: u64 = self.topic_word[t * self.vocab_size..(t + 1) * self.vocab_size]
                .iter()
                .map(|&c| c as u64)
                .sum();
            if row != self.topic_total[t] as u64 {
                return Err(format!("topic {t} word counts disagree with total"));
            }
        }
        for d in 0..self.doc_len.len() {
            let row: u64 = self.doc_topic[d * k..(d + 1) * k]
                .iter()
                .map(|&c| c as u64)
                .sum();
            if row != self.doc_len[d] as u64 {
                return Err(format!("doc {d} topic counts disagree with length"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated word clusters; documents draw from one cluster.
    fn two_topic_corpus() -> (Vec<Vec<usize>>, usize) {
        let mut docs = Vec::new();
        for i in 0..40 {
            let base = if i % 2 == 0 { 0 } else { 5 };
            docs.push((0..25).map(|j| base + (i * 3 + j) % 5).collect());
        }
        (docs, 10)
    }

    fn quick() -> LdaConfig {
        LdaConfig {
            num_topics: 2,
            iterations: 80,
            ..Default::default()
        }
    }

    #[test]
    fn invariants_hold_after_fit() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        model.check_invariants().unwrap();
    }

    #[test]
    fn recovers_two_topics() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        // Top words of each topic should come from one cluster.
        let purity = |topic: usize| {
            let top = model.top_words(topic, 5);
            let low = top.iter().filter(|&&(w, _)| w < 5).count();
            low.max(5 - low)
        };
        assert!(purity(0) >= 4, "topic 0 should be nearly pure");
        assert!(purity(1) >= 4, "topic 1 should be nearly pure");
    }

    #[test]
    fn documents_assigned_to_their_cluster_topic() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        // All even docs share a dominant topic; odd docs get the other one.
        let t_even = model.dominant_topic(0);
        let t_odd = model.dominant_topic(1);
        assert_ne!(t_even, t_odd);
        for d in 0..docs.len() {
            let expected = if d % 2 == 0 { t_even } else { t_odd };
            assert_eq!(model.dominant_topic(d), expected, "doc {d}");
        }
    }

    #[test]
    fn distributions_sum_to_one() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        for t in 0..model.num_topics() {
            let s: f64 = (0..v).map(|w| model.phi(t, w)).sum();
            assert!((s - 1.0).abs() < 1e-9, "phi row {t} sums to {s}");
        }
        for d in 0..docs.len() {
            let s: f64 = (0..model.num_topics()).map(|t| model.theta(d, t)).sum();
            assert!((s - 1.0).abs() < 1e-9, "theta row {d} sums to {s}");
        }
    }

    #[test]
    fn fitted_model_beats_random_assignment_likelihood() {
        let (docs, v) = two_topic_corpus();
        let fitted = LdaModel::fit(&docs, v, &quick());
        let random = LdaModel::fit(
            &docs,
            v,
            &LdaConfig {
                iterations: 0,
                ..quick()
            },
        );
        assert!(
            fitted.log_likelihood(&docs) > random.log_likelihood(&docs),
            "Gibbs sweeps must improve likelihood"
        );
    }

    #[test]
    fn perplexity_is_exp_of_negative_ll() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        let ll = model.log_likelihood(&docs);
        assert!((model.perplexity(&docs) - (-ll).exp()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (docs, v) = two_topic_corpus();
        let m1 = LdaModel::fit(&docs, v, &quick());
        let m2 = LdaModel::fit(&docs, v, &quick());
        assert_eq!(m1.top_words(0, 5), m2.top_words(0, 5));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let model = LdaModel::fit(&[], 5, &quick());
        assert_eq!(model.num_docs(), 0);
        model.check_invariants().unwrap();
        assert_eq!(model.log_likelihood(&[]), 0.0);

        let with_empty = LdaModel::fit(&[vec![], vec![0, 1]], 2, &quick());
        with_empty.check_invariants().unwrap();
        // Empty doc's theta is the uniform prior.
        let k = with_empty.num_topics() as f64;
        assert!((with_empty.theta(0, 0) - 1.0 / k).abs() < 1e-9);
    }

    #[test]
    fn single_topic_model() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            v,
            &LdaConfig {
                num_topics: 1,
                iterations: 10,
                ..Default::default()
            },
        );
        model.check_invariants().unwrap();
        assert_eq!(model.dominant_topic(0), 0);
    }

    #[test]
    fn top_words_truncates_and_orders() {
        let (docs, v) = two_topic_corpus();
        let model = LdaModel::fit(&docs, v, &quick());
        let top = model.top_words(0, 3);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
