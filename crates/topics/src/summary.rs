//! Human-readable topic summaries.
//!
//! The CREDENCE builder page exposes a *BROWSE TOPICS* modal listing, for
//! each topic, its top terms across the currently ranked documents. This
//! module resolves the fitted model's word ids back through the vocabulary
//! into exactly that display structure.

use credence_text::Vocabulary;

use crate::lda::LdaModel;

/// One topic's display summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicSummary {
    /// Topic index.
    pub topic: usize,
    /// Top terms, best first, with their phi probabilities.
    pub terms: Vec<(String, f64)>,
    /// Share of corpus tokens assigned to this topic (sums to ~1 over topics).
    pub weight: f64,
}

/// Summarise every topic of a fitted model with its `top_n` terms.
///
/// Word ids missing from `vocab` (impossible when the model was fitted on
/// ids interned by the same vocabulary) are skipped defensively.
pub fn summarize_topics(model: &LdaModel, vocab: &Vocabulary, top_n: usize) -> Vec<TopicSummary> {
    let totals: Vec<f64> = (0..model.num_topics())
        .map(|t| {
            (0..model.vocab_size())
                .map(|w| model.phi(t, w))
                .sum::<f64>()
        })
        .collect();
    // Approximate topic weight by document-topic mass.
    let mut weights = vec![0.0f64; model.num_topics()];
    for d in 0..model.num_docs() {
        for (t, w) in weights.iter_mut().enumerate() {
            *w += model.theta(d, t);
        }
    }
    let weight_sum: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);

    (0..model.num_topics())
        .map(|t| {
            let terms = model
                .top_words(t, top_n)
                .into_iter()
                .filter_map(|(w, p)| {
                    vocab
                        .term(w as u32)
                        .map(|s| (s.to_string(), p / totals[t].max(f64::MIN_POSITIVE)))
                })
                .collect();
            TopicSummary {
                topic: t,
                terms,
                weight: weights[t] / weight_sum,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::LdaConfig;

    #[test]
    fn summaries_resolve_terms() {
        let mut vocab = Vocabulary::new();
        let covid = vocab.intern("covid") as usize;
        let microchip = vocab.intern("microchip") as usize;
        let garden = vocab.intern("garden") as usize;
        let flower = vocab.intern("flower") as usize;
        let docs: Vec<Vec<usize>> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    vec![covid, microchip, covid, microchip]
                } else {
                    vec![garden, flower, garden, flower]
                }
            })
            .collect();
        let model = LdaModel::fit(
            &docs,
            vocab.len(),
            &LdaConfig {
                num_topics: 2,
                iterations: 60,
                ..Default::default()
            },
        );
        let summaries = summarize_topics(&model, &vocab, 2);
        assert_eq!(summaries.len(), 2);
        // Each summary's terms must come from one cluster.
        for s in &summaries {
            let names: Vec<&str> = s.terms.iter().map(|(t, _)| t.as_str()).collect();
            let covid_topic = names.contains(&"covid") || names.contains(&"microchip");
            let garden_topic = names.contains(&"garden") || names.contains(&"flower");
            assert!(covid_topic ^ garden_topic, "mixed topic: {names:?}");
        }
        let total_weight: f64 = summaries.iter().map(|s| s.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_n_respected() {
        let mut vocab = Vocabulary::new();
        for w in ["a", "b", "c", "d", "e"] {
            vocab.intern(w);
        }
        let docs = vec![vec![0usize, 1, 2, 3, 4]; 5];
        let model = LdaModel::fit(
            &docs,
            vocab.len(),
            &LdaConfig {
                num_topics: 1,
                iterations: 10,
                ..Default::default()
            },
        );
        let s = summarize_topics(&model, &vocab, 3);
        assert_eq!(s[0].terms.len(), 3);
    }
}
