//! End-to-end tests for the async explanation job subsystem: submit, poll,
//! cancel, queue backpressure, TTL expiry, and drain-on-shutdown — all over
//! real TCP sockets, the way a client of the REST API experiences it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use credence_core::EngineConfig;
use credence_index::Document;
use credence_json::{parse, Value};
use credence_server::{AppState, JobState, JobsConfig, RankerChoice, Server, ServerHandle};

/// Small corpus whose searches finish in milliseconds.
fn quick_docs() -> Vec<Document> {
    vec![
        Document::new("a", "A", "covid outbreak covid outbreak tonight"),
        Document::new(
            "b",
            "B",
            "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
             for weeks before acting decisively.",
        ),
        Document::new("c", "C", "garden fair draws a record crowd"),
    ]
}

/// One long query-relevant document: an exact-serial sentence-removal
/// search over it runs for seconds, long enough to keep a worker busy.
fn slow_docs() -> Vec<Document> {
    let mut body = String::new();
    for i in 0..48 {
        if i % 4 == 0 {
            body.push_str(&format!(
                "The covid outbreak update number n{i} arrives today. "
            ));
        } else {
            body.push_str(&format!(
                "Filler sentence number n{i} talks about daily life. "
            ));
        }
    }
    let mut docs = vec![Document::new("long", "Long covid doc", &body)];
    for i in 0..4 {
        docs.push(Document::new(
            &format!("pad-{i}"),
            "Report",
            "covid outbreak report with several extra words for normalisation",
        ));
    }
    docs
}

/// The submission envelope for a slow sentence-removal search (exact
/// serial evaluation, wide enumeration, deadline as a safety net).
fn slow_submit_body(deadline_ms: u64) -> String {
    format!(
        r#"{{"endpoint": "sentence-removal",
            "request": {{"query": "covid outbreak", "k": 1, "doc": 0, "n": 999,
                         "max_size": 3, "max_candidates": 48,
                         "eval_exact": true, "eval_threads": 1,
                         "deadline_ms": {deadline_ms}}}}}"#
    )
}

struct Harness {
    state: &'static AppState,
    handle: ServerHandle,
}

impl Harness {
    fn boot(docs: Vec<Document>, jobs: JobsConfig) -> Self {
        let state = AppState::leak_jobs(docs, EngineConfig::fast(), RankerChoice::Bm25, jobs);
        let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
        Self { state, handle }
    }

    fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String, Value) {
        let (status, headers, body) = raw_request(self.addr(), method, path, body);
        let json = parse(&body).unwrap_or(Value::Null);
        (status, headers, json)
    }

    /// Submit one job, returning its wire id and numeric id.
    fn submit(&self, body: &str) -> (String, u64) {
        let (status, _, v) = self.request("POST", "/api/v1/jobs", Some(body));
        assert_eq!(status, 202, "{v:?}");
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        let wire = v.get("job_id").unwrap().as_str().unwrap().to_string();
        let numeric = wire.strip_prefix("job-").unwrap().parse().unwrap();
        (wire, numeric)
    }

    /// Spin until the job is claimed by a worker (leaves `queued`).
    fn await_claimed(&self, id: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let view = self.state.jobs().get(id, self.state.metrics()).unwrap();
            if view.state != JobState::Queued {
                return;
            }
            assert!(Instant::now() < deadline, "worker never claimed job {id}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body_start = out.find("\r\n\r\n").expect("header terminator") + 4;
    (
        status,
        out[..body_start].to_string(),
        out[body_start..].to_string(),
    )
}

#[test]
fn submit_poll_complete_matches_synchronous_payload() {
    let h = Harness::boot(quick_docs(), JobsConfig::default());
    let (wire, numeric) = h.submit(
        r#"{"endpoint": "sentence-removal",
            "request": {"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}}"#,
    );
    assert_eq!(
        h.state
            .jobs()
            .wait_terminal(numeric, Duration::from_secs(30)),
        Some(JobState::Complete)
    );

    let (status, _, v) = h.request("GET", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 200);
    assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
    assert_eq!(v.get("result_status").unwrap().as_u64(), Some(200));

    let (sync_status, _, sync) = h.request(
        "POST",
        "/api/v1/explain/sentence-removal",
        Some(r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}"#),
    );
    assert_eq!(sync_status, 200);
    assert_eq!(
        *v.get("result").unwrap(),
        sync,
        "job payload must be identical to the synchronous response"
    );
    h.handle.stop();
}

#[test]
fn cancelling_a_running_job_frees_the_worker() {
    let h = Harness::boot(
        slow_docs(),
        JobsConfig {
            workers: 1,
            queue_depth: 8,
            ..JobsConfig::default()
        },
    );
    let (wire, numeric) = h.submit(&slow_submit_body(30_000));
    h.await_claimed(numeric);

    let (status, _, v) = h.request("DELETE", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 202, "{v:?}");
    assert_eq!(v.get("cancel_requested").unwrap().as_bool(), Some(true));

    // The search observes the raised budget flag at its next candidate
    // batch and stores its partial best-so-far result.
    assert_eq!(
        h.state
            .jobs()
            .wait_terminal(numeric, Duration::from_secs(10)),
        Some(JobState::Cancelled)
    );
    let (status, _, v) = h.request("GET", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 200);
    assert_eq!(v.get("status").unwrap().as_str(), Some("cancelled"));
    assert_eq!(
        v.get("result").unwrap().get("status").unwrap().as_str(),
        Some("cancelled"),
        "partial result carries the search's own status"
    );

    // The freed worker picks up and completes a fresh quick job.
    let (_, next) = h.submit(
        r#"{"endpoint": "term-removal",
            "request": {"query": "covid outbreak", "k": 2, "doc": 1, "n": 1, "max_evals": 2}}"#,
    );
    let state = h
        .state
        .jobs()
        .wait_terminal(next, Duration::from_secs(30))
        .unwrap();
    assert!(state.is_terminal(), "worker was freed: {state:?}");
    h.handle.stop();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let h = Harness::boot(
        slow_docs(),
        JobsConfig {
            workers: 1,
            queue_depth: 1,
            ..JobsConfig::default()
        },
    );
    let (running_wire, running) = h.submit(&slow_submit_body(20_000));
    h.await_claimed(running);
    let (waiting_wire, _) = h.submit(&slow_submit_body(20_000));

    let (status, headers, v) = h.request("POST", "/api/v1/jobs", Some(&slow_submit_body(20_000)));
    assert_eq!(status, 429, "{v:?}");
    assert!(
        headers.to_ascii_lowercase().contains("retry-after"),
        "{headers}"
    );
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("queue_full")
    );

    // Unblock the pool so shutdown drains quickly.
    let _ = h.request("DELETE", &format!("/api/v1/jobs/{running_wire}"), None);
    let _ = h.request("DELETE", &format!("/api/v1/jobs/{waiting_wire}"), None);
    h.handle.stop();
}

#[test]
fn expired_results_answer_410() {
    let h = Harness::boot(
        quick_docs(),
        JobsConfig {
            result_ttl_ms: 50,
            ..JobsConfig::default()
        },
    );
    let (wire, numeric) = h.submit(
        r#"{"endpoint": "query-reduction",
            "request": {"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}}"#,
    );
    let state = h
        .state
        .jobs()
        .wait_terminal(numeric, Duration::from_secs(30))
        .unwrap();
    assert!(state.is_terminal());
    std::thread::sleep(Duration::from_millis(100));

    let (status, _, v) = h.request("GET", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 410, "{v:?}");
    assert_eq!(v.get("status").unwrap().as_str(), Some("expired"));
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("job_expired")
    );
    assert!(v.get("result").is_none(), "the payload was discarded");
    h.handle.stop();
}

#[test]
fn shutdown_drains_without_dropping_jobs() {
    let h = Harness::boot(
        slow_docs(),
        JobsConfig {
            workers: 1,
            queue_depth: 4,
            ..JobsConfig::default()
        },
    );
    // One job running under a budget that ends it within a couple of
    // seconds, one queued behind it.
    let (_, running) = h.submit(&slow_submit_body(1_500));
    h.await_claimed(running);
    let (_, waiting) = h.submit(&slow_submit_body(1_500));

    let state = h.state;
    h.handle.stop();

    // After stop() returns, the pool has been joined: the running job
    // finished under its own budget with a stored result (never dropped
    // mid-run) and the queued one was cancelled without running.
    let view = state.jobs().get(running, state.metrics()).unwrap();
    assert!(
        view.state.is_terminal(),
        "running job dropped: {:?}",
        view.state
    );
    assert!(view.result.is_some(), "drained job lost its payload");
    let view = state.jobs().get(waiting, state.metrics()).unwrap();
    assert_eq!(view.state, JobState::Cancelled);
    assert!(view.result.is_none(), "never ran, so no payload");

    // The runner refuses further submissions even in-process.
    assert!(matches!(
        state.jobs().submit(
            credence_server::requests::JobSubmitRequest::parse(
                &parse(&slow_submit_body(1_000)).unwrap()
            )
            .unwrap()
            .request,
            state.default_snapshot(),
            state.metrics()
        ),
        credence_server::jobs::SubmitOutcome::ShuttingDown
    ));
}

#[test]
fn metrics_expose_the_job_families() {
    let h = Harness::boot(quick_docs(), JobsConfig::default());
    let (_, numeric) = h.submit(
        r#"{"endpoint": "sentence-removal",
            "request": {"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}}"#,
    );
    h.state
        .jobs()
        .wait_terminal(numeric, Duration::from_secs(30));

    let (status, _, text) = raw_request(h.addr(), "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(text.contains("credence_jobs_queue_depth"), "{text}");
    assert!(
        text.contains("credence_jobs_total{state=\"queued\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("credence_jobs_total{state=\"running\"} 1"),
        "{text}"
    );
    assert!(text.contains("credence_jobs_rejected_total"), "{text}");
    assert!(
        text.contains("credence_jobs_queue_wait_seconds_count 1"),
        "{text}"
    );
    assert!(
        text.contains("credence_jobs_execution_seconds_count 1"),
        "{text}"
    );
    h.handle.stop();
}

#[test]
fn jobs_through_the_router_match_single_node_payloads_bit_for_bit() {
    use credence_server::{RouterConfig, RouterState};

    // A worker behind a router, and an independent single-node control.
    // Both index the same documents, and every substrate is seeded, so
    // the stored result payloads must agree byte for byte.
    let control = Harness::boot(quick_docs(), JobsConfig::default());
    let worker = Harness::boot(quick_docs(), JobsConfig::default());
    let router_state = RouterState::leak(vec![worker.addr()], RouterConfig::default());
    let router = Server::bind("127.0.0.1:0", router_state)
        .unwrap()
        .spawn()
        .unwrap();

    let submit = r#"{"endpoint": "sentence-removal",
        "request": {"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}}"#;

    // Submit through the router: the wire id gains the worker tag.
    let (status, _, v) = raw_request(router.addr(), "POST", "/api/v1/jobs", Some(submit));
    assert_eq!(status, 202, "{v}");
    let routed_id = {
        let v = parse(&v).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        v.get("job_id").unwrap().as_str().unwrap().to_string()
    };
    assert!(
        routed_id.starts_with("job-0-"),
        "router ids carry the worker index: {routed_id}"
    );

    // Poll through the router until the job lands.
    let deadline = Instant::now() + Duration::from_secs(30);
    let routed_view = loop {
        let (status, _, body) = raw_request(
            router.addr(),
            "GET",
            &format!("/api/v1/jobs/{routed_id}"),
            None,
        );
        assert_eq!(status, 200, "{body}");
        let view = parse(&body).unwrap();
        match view.get("status").unwrap().as_str().unwrap() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "routed job never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => break view,
        }
    };
    assert_eq!(
        routed_view.get("status").unwrap().as_str(),
        Some("complete")
    );
    assert_eq!(
        routed_view.get("result_status").unwrap().as_u64(),
        Some(200)
    );
    assert_eq!(
        routed_view.get("job_id").unwrap().as_str(),
        Some(routed_id.as_str()),
        "polled ids stay router-tagged"
    );

    // The same job executed single-node.
    let (wire, numeric) = control.submit(submit);
    assert_eq!(
        control
            .state
            .jobs()
            .wait_terminal(numeric, Duration::from_secs(30)),
        Some(JobState::Complete)
    );
    let (status, _, single_view) = control.request("GET", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 200);

    // Bit-identical payloads: compare the serialised result bytes, not
    // just structural equality.
    assert_eq!(
        credence_json::to_string(routed_view.get("result").unwrap()),
        credence_json::to_string(single_view.get("result").unwrap()),
        "router job payloads must be bit-identical to single-node jobs"
    );

    // And both match the synchronous endpoint.
    let (sync_status, _, sync) = control.request(
        "POST",
        "/api/v1/explain/sentence-removal",
        Some(r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 1}"#),
    );
    assert_eq!(sync_status, 200);
    assert_eq!(*single_view.get("result").unwrap(), sync);

    // Cancel routing: a DELETE on the tagged id reaches the owner worker
    // (already terminal, so the worker reports the terminal state).
    let (status, _, body) = raw_request(
        router.addr(),
        "DELETE",
        &format!("/api/v1/jobs/{routed_id}"),
        None,
    );
    assert_eq!(status, 200, "{body}");

    // Malformed and out-of-range router ids fail loudly.
    let (status, _, _) = raw_request(router.addr(), "GET", "/api/v1/jobs/job-9", None);
    assert_eq!(status, 400, "single-node ids are not valid router ids");
    let (status, _, _) = raw_request(router.addr(), "GET", "/api/v1/jobs/job-7-1", None);
    assert_eq!(status, 404, "worker index out of range");

    router.stop();
    worker.handle.stop();
    control.handle.stop();
}
