//! End-to-end cluster-mode tests: a router process fanning `/api/v1`
//! requests out over real worker servers on real TCP sockets.
//!
//! The headline contract — the reason cluster mode is trustworthy at
//! all — is proven here byte-for-byte: a clustered `/rank` response is
//! *identical* to the single-node response, not merely rank-order
//! equal. The degradation matrix (worker down / worker slow / worker
//! dying mid-request) is exercised against fake workers that misbehave
//! on cue.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_json::{parse, Value};
use credence_server::{AppState, RouterConfig, RouterState, Server, ServerHandle};

/// A two-worker cluster plus a single-node control, all over the same
/// leaked engine state so scores come from the same index build.
struct Cluster {
    single: ServerHandle,
    router: ServerHandle,
    #[allow(dead_code)]
    workers: Vec<ServerHandle>,
}

fn cluster() -> &'static Cluster {
    static CLUSTER: OnceLock<Cluster> = OnceLock::new();
    CLUSTER.get_or_init(|| {
        let state = AppState::leak(covid_demo_corpus().docs, EngineConfig::fast());
        let single = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
        let workers: Vec<ServerHandle> = (0..2)
            .map(|_| Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap())
            .collect();
        let router_state = RouterState::leak(
            workers.iter().map(|w| w.addr()).collect(),
            RouterConfig::default(),
        );
        let router = Server::bind("127.0.0.1:0", router_state)
            .unwrap()
            .spawn()
            .unwrap();
        Cluster {
            single,
            router,
            workers,
        }
    })
}

/// One raw HTTP round trip: status, header section, body text.
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body_start = out.find("\r\n\r\n").expect("header terminator") + 4;
    (
        status,
        out[..body_start].to_string(),
        out[body_start..].to_string(),
    )
}

#[test]
fn router_rank_is_byte_identical_to_single_node() {
    let c = cluster();
    for (query, k) in [
        ("covid outbreak", 10),
        ("school closure", 5),
        ("vaccine", 1),
        ("covid", 60),
    ] {
        let body = format!("{{\"query\": \"{query}\", \"k\": {k}}}");
        let (ss, _, single) = raw_request(c.single.addr(), "POST", "/api/v1/rank", Some(&body));
        let (rs, _, routed) = raw_request(c.router.addr(), "POST", "/api/v1/rank", Some(&body));
        assert_eq!(ss, 200);
        assert_eq!(rs, 200);
        assert_eq!(
            single, routed,
            "clustered /rank must be byte-identical to single-node for {query:?} k={k}"
        );
    }
}

#[test]
fn router_explainer_is_byte_identical_to_single_node() {
    let c = cluster();
    let body = r#"{"query": "covid outbreak", "k": 10, "doc": 0, "n": 2}"#;
    let (ss, _, single) = raw_request(
        c.single.addr(),
        "POST",
        "/api/v1/explain/sentence-removal",
        Some(body),
    );
    let (rs, _, routed) = raw_request(
        c.router.addr(),
        "POST",
        "/api/v1/explain/sentence-removal",
        Some(body),
    );
    assert_eq!(ss, 200);
    assert_eq!(rs, 200);
    assert_eq!(
        single, routed,
        "doc-affine explainers relay byte-identically through the router"
    );
}

#[test]
fn router_feature_attribution_is_byte_identical_to_single_node() {
    let c = cluster();
    // Seeded sampling keeps the payload deterministic, so the relayed
    // response must match single-node byte-for-byte, not approximately.
    let body = r#"{"query": "covid outbreak", "k": 10, "doc": 0, "samples": 64, "seed": 3}"#;
    let (ss, _, single) = raw_request(
        c.single.addr(),
        "POST",
        "/api/v1/explain/feature_attribution",
        Some(body),
    );
    let (rs, _, routed) = raw_request(
        c.router.addr(),
        "POST",
        "/api/v1/explain/feature_attribution",
        Some(body),
    );
    assert_eq!(ss, 200, "{single}");
    assert_eq!(rs, 200, "{routed}");
    assert_eq!(
        single, routed,
        "feature attribution relays byte-identically through the router"
    );
}

#[test]
fn router_rejects_client_supplied_partition_fields() {
    let c = cluster();
    let (status, _, body) = raw_request(
        c.router.addr(),
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid", "k": 3, "partition_index": 0, "partition_count": 2}"#),
    );
    assert_eq!(status, 400);
    let v = parse(&body).unwrap();
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("invalid_field")
    );
}

#[test]
fn router_health_and_metrics_answer_locally() {
    let c = cluster();
    let (status, _, body) = raw_request(c.router.addr(), "GET", "/api/v1/health", None);
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);
    let (status, _, metrics) = raw_request(c.router.addr(), "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("credence_router_requests_total"),
        "{metrics}"
    );
    assert!(metrics.contains("credence_router_workers 2"), "{metrics}");
}

/// An address that refuses connections: bind an ephemeral port, then
/// drop the listener before anyone connects.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    addr
}

/// A fake worker that accepts connections, reads the request, then
/// misbehaves: sleeps past any deadline (`hang: true`) or closes the
/// socket without responding (`hang: false`). Runs detached for the
/// life of the test binary.
fn fake_worker(hang: bool) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                if hang {
                    std::thread::sleep(Duration::from_secs(30));
                }
                // Dropping the stream here closes the connection with no
                // response bytes — the mid-request death case.
            });
        }
    });
    addr
}

/// A router over one live worker plus one misbehaving partition.
fn degraded_router(bad: SocketAddr, fanout_deadline_ms: u64) -> ServerHandle {
    let state = AppState::leak(covid_demo_corpus().docs, EngineConfig::fast());
    let live = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let router_state = RouterState::leak(
        vec![live.addr(), bad],
        RouterConfig {
            partitions: 0,
            fanout_deadline_ms,
        },
    );
    // The live worker handle leaks with the cluster — these routers live
    // for the remainder of the test process.
    std::mem::forget(live);
    Server::bind("127.0.0.1:0", router_state)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn worker_down_at_startup_is_a_503_envelope() {
    let router = degraded_router(dead_addr(), 2_000);
    let (status, _, body) = raw_request(
        router.addr(),
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 5}"#),
    );
    assert_eq!(status, 503, "an unreachable partition refuses the request");
    let v = parse(&body).unwrap();
    let err = v.get("error").unwrap();
    assert_eq!(
        err.get("code").unwrap().as_str(),
        Some("worker_unavailable")
    );
    assert!(
        err.get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unreachable"),
        "{body}"
    );
}

#[test]
fn worker_missing_the_deadline_degrades_to_partial_listing() {
    let router = degraded_router(fake_worker(true), 300);
    let started = Instant::now();
    let (status, _, body) = raw_request(
        router.addr(),
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 5}"#),
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline must bound the fanout, took {:?}",
        started.elapsed()
    );
    assert_eq!(status, 200, "{body}");
    let v = parse(&body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("deadline"));
    let missing = v.get("missing_partitions").unwrap().as_array().unwrap();
    assert_eq!(missing.len(), 1, "exactly one partition timed out: {body}");
    assert!(
        !v.get("ranking").unwrap().as_array().unwrap().is_empty(),
        "the live partition still contributes rows"
    );
}

#[test]
fn worker_dying_mid_request_degrades_without_hanging() {
    let router = degraded_router(fake_worker(false), 2_000);
    let started = Instant::now();
    let (status, _, body) = raw_request(
        router.addr(),
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 5}"#),
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "a dying worker must not hang the router, took {:?}",
        started.elapsed()
    );
    assert_eq!(status, 200, "{body}");
    let v = parse(&body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("degraded"));
    assert_eq!(
        v.get("missing_partitions")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        1,
        "{body}"
    );
}

#[test]
fn unversioned_paths_through_the_router_carry_deprecation_headers() {
    let c = cluster();
    let (status, headers, _) = raw_request(
        c.router.addr(),
        "POST",
        "/rank",
        Some(r#"{"query": "covid", "k": 3}"#),
    );
    assert_eq!(status, 200);
    let lower = headers.to_ascii_lowercase();
    assert!(lower.contains("deprecation: true"), "{headers}");
    assert!(lower.contains("/api/v1/rank"), "{headers}");
}

#[test]
fn doc_lookup_routes_to_the_owner_worker() {
    let c = cluster();
    let (ss, _, single) = raw_request(c.single.addr(), "GET", "/api/v1/doc/3", None);
    let (rs, _, routed) = raw_request(c.router.addr(), "GET", "/api/v1/doc/3", None);
    assert_eq!(ss, 200);
    assert_eq!(rs, 200);
    assert_eq!(single, routed, "replicated workers answer /doc identically");
}

#[test]
fn router_rank_parity_holds_for_every_partition_count() {
    // One worker serving 1..=8 partitions: the merge contract cannot
    // depend on how finely the fanout splits the corpus.
    let c = cluster();
    let body = r#"{"query": "covid outbreak", "k": 20}"#;
    let (_, _, single) = raw_request(c.single.addr(), "POST", "/api/v1/rank", Some(body));
    let state = AppState::leak(covid_demo_corpus().docs, EngineConfig::fast());
    let worker = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    for partitions in 1..=8u32 {
        let router_state = RouterState::leak(
            vec![worker.addr()],
            RouterConfig {
                partitions,
                fanout_deadline_ms: 10_000,
            },
        );
        let router = Server::bind("127.0.0.1:0", router_state)
            .unwrap()
            .spawn()
            .unwrap();
        let (status, _, routed) = raw_request(router.addr(), "POST", "/api/v1/rank", Some(body));
        assert_eq!(status, 200);
        assert_eq!(
            single, routed,
            "partition count {partitions} must not change the merged bytes"
        );
        std::mem::forget(router);
    }
    std::mem::forget(worker);
}
