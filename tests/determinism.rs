//! Determinism regression for every seeded stochastic component.
//!
//! The hermetic RNG's whole point is byte-reproducible runs: with fixed
//! seeds, two fits of the same model on the same data must agree exactly —
//! not approximately — so experiment tables and BENCH trajectories are
//! diffable across machines. Each test here runs a component twice and
//! compares outputs with `==` (bit equality for floats), plus one sanity
//! check that changing the seed actually changes the output.

use credence_core::{cosine_sampled, CosineSampledConfig};
use credence_corpus::{SynthConfig, SyntheticCorpus};
use credence_embed::{Doc2Vec, Doc2VecConfig};
use credence_index::{Bm25Params, InvertedIndex};
use credence_rank::{rank_corpus, Bm25Ranker};
use credence_text::Analyzer;
use credence_topics::{LdaConfig, LdaModel};

fn synth(seed: u64) -> SyntheticCorpus {
    SyntheticCorpus::generate(SynthConfig {
        num_docs: 60,
        seed,
        ..SynthConfig::default()
    })
}

/// Token-id sequences for embedding training, via the built index's own
/// analyzer and vocabulary.
fn sequences(index: &InvertedIndex) -> (Vec<Vec<usize>>, usize) {
    let analyzer = index.analyzer();
    let seqs = index
        .documents()
        .iter()
        .map(|d| {
            analyzer
                .analyze(&d.body)
                .iter()
                .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
                .collect()
        })
        .collect();
    (seqs, index.vocabulary().len())
}

#[test]
fn synthetic_corpus_is_seed_deterministic() {
    let a = synth(7);
    let b = synth(7);
    assert_eq!(a.docs, b.docs);

    let c = synth(8);
    assert_ne!(
        a.docs, c.docs,
        "different seeds must give different corpora"
    );
}

#[test]
fn doc2vec_training_is_seed_deterministic() {
    let corpus = synth(7);
    let index = InvertedIndex::build(corpus.docs.clone(), Analyzer::english());
    let (seqs, vocab) = sequences(&index);
    let cfg = Doc2VecConfig {
        dim: 16,
        epochs: 3,
        ..Doc2VecConfig::default()
    };

    let m1 = Doc2Vec::train(&seqs, vocab, &cfg);
    let m2 = Doc2Vec::train(&seqs, vocab, &cfg);
    for d in 0..m1.num_docs() {
        assert_eq!(m1.doc_vector(d), m2.doc_vector(d), "doc vector {d} differs");
    }
    // Inference is seeded too (it perturbs a fresh vector).
    assert_eq!(m1.infer(&seqs[0]), m2.infer(&seqs[0]));

    let m3 = Doc2Vec::train(&seqs, vocab, &Doc2VecConfig { seed: 43, ..cfg });
    assert_ne!(
        m1.doc_vector(0),
        m3.doc_vector(0),
        "different seeds must give different embeddings"
    );
}

#[test]
fn lda_fit_is_seed_deterministic() {
    let corpus = synth(7);
    let index = InvertedIndex::build(corpus.docs.clone(), Analyzer::english());
    let (seqs, vocab) = sequences(&index);
    let cfg = LdaConfig {
        num_topics: 4,
        iterations: 20,
        ..LdaConfig::default()
    };

    let m1 = LdaModel::fit(&seqs, vocab, &cfg);
    let m2 = LdaModel::fit(&seqs, vocab, &cfg);
    for t in 0..cfg.num_topics {
        for w in 0..vocab {
            assert_eq!(m1.phi(t, w), m2.phi(t, w), "phi({t},{w}) differs");
        }
        assert_eq!(m1.top_words(t, 10), m2.top_words(t, 10));
    }
    for d in 0..m1.num_docs() {
        for t in 0..cfg.num_topics {
            assert_eq!(m1.theta(d, t), m2.theta(d, t), "theta({d},{t}) differs");
        }
    }

    let m3 = LdaModel::fit(&seqs, vocab, &LdaConfig { seed: 43, ..cfg });
    let same = (0..cfg.num_topics).all(|t| (0..vocab).all(|w| m1.phi(t, w) == m3.phi(t, w)));
    assert!(
        !same,
        "different seeds must give different topic assignments"
    );
}

#[test]
fn cosine_sampled_explainer_is_seed_deterministic() {
    let corpus = synth(7);
    let index = InvertedIndex::build(corpus.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(0, 3);
    let ranking = rank_corpus(&ranker, &query);
    assert!(
        !ranking.is_empty(),
        "synthetic query must retrieve documents"
    );
    let doc = ranking.top_k(1)[0];
    let cfg = CosineSampledConfig {
        samples: 10,
        ..CosineSampledConfig::default()
    };

    let e1 = cosine_sampled(&ranker, &query, 1, doc, 5, &cfg).unwrap();
    let e2 = cosine_sampled(&ranker, &query, 1, doc, 5, &cfg).unwrap();
    assert_eq!(e1.len(), e2.len());
    for (a, b) in e1.iter().zip(&e2) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.similarity, b.similarity);
        assert_eq!(a.rank, b.rank);
    }
}

#[test]
fn loadgen_schedule_is_seed_deterministic() {
    use credence_bench::loadgen::schedule;
    let a = schedule(0xC0FFEE, 16, 1.0, 256, 500.0);
    let b = schedule(0xC0FFEE, 16, 1.0, 256, 500.0);
    assert_eq!(a, b, "identical seeds must give identical schedules");
    let c = schedule(0xC0FFEF, 16, 1.0, 256, 500.0);
    assert_ne!(a, c, "a different seed must change the schedule");
    // The schedule covers both the query mix and the arrival process:
    // equality above is on (query index, start offset) pairs, so any
    // drift in either stream fails this test.
    assert!(a.iter().any(|r| r.query != a[0].query), "mix has variety");
}

#[test]
fn committed_capacity_curve_is_well_formed() {
    use credence_json::{parse, Value};
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_capacity.json");
    let text = std::fs::read_to_string(path).expect("BENCH_capacity.json is committed");
    let doc = parse(&text).expect("capacity artifact parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(credence_bench::loadgen::CAPACITY_SCHEMA)
    );
    let points = doc
        .get("points")
        .and_then(Value::as_array)
        .expect("points array");
    assert!(points.len() >= 4, "at least 4 offered-QPS points");
    let mut prev_offered = 0.0;
    for p in points {
        let offered = p.get("offered_qps").and_then(Value::as_f64).unwrap();
        assert!(
            offered > prev_offered,
            "offered QPS must increase monotonically"
        );
        prev_offered = offered;
        let p50 = p.get("p50_ms").and_then(Value::as_f64).unwrap();
        let p95 = p.get("p95_ms").and_then(Value::as_f64).unwrap();
        let p99 = p.get("p99_ms").and_then(Value::as_f64).unwrap();
        assert!(
            p50 <= p95 && p95 <= p99,
            "percentiles must be ordered: p50 {p50} p95 {p95} p99 {p99}"
        );
        assert!(p.get("achieved_qps").and_then(Value::as_f64).unwrap() > 0.0);
    }
    // The committed curve must show a saturation knee — the point of
    // running the sweep past capacity.
    assert!(
        doc.get("knee_offered_qps")
            .and_then(Value::as_f64)
            .is_some(),
        "committed capacity curve must include a visible saturation knee"
    );
}
