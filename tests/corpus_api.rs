//! Snapshot-isolation acceptance tests for the multi-tenant corpus
//! registry.
//!
//! The contract under test: a snapshot pinned at generation G answers
//! **bit-identically** to a frozen engine built from G's contents — same
//! `(doc, score.to_bits())` rankings under all four search strategies, and
//! byte-identical explanation payloads from all four explainers — while
//! concurrent mutations advance the live corpus to G+k. Plus the async
//! leg: a job admitted before a mutation executes against its pinned
//! generation even though the live corpus has moved on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use credence_core::EngineConfig;
use credence_index::{DeltaOp, Document};
use credence_json::{parse, Value};
use credence_server::http::Request;
use credence_server::service::handle_request;
use credence_server::{AppState, JobsConfig, RankerChoice, Server};

/// A corpus rich enough that every explainer and strategy has work to do.
fn parity_docs() -> Vec<Document> {
    vec![
        Document::new(
            "n1",
            "Outbreak news",
            "covid outbreak covid outbreak dominates the news cycle this week entirely",
        ),
        Document::new(
            "n2",
            "Quiet arrival",
            "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
             for weeks before acting decisively.",
        ),
        Document::new(
            "n3",
            "Conspiracy corner",
            "The covid outbreak is a cover story. A secret microchip hides in every \
             vaccine dose. The microchip tracks your movements constantly.",
        ),
        Document::new(
            "n4",
            "Copycat",
            "A secret microchip hides in every vaccine dose. The microchip tracks your \
             movements constantly and secretly.",
        ),
        Document::new(
            "n5",
            "Harbor drills",
            "Outbreak drills continue at the harbor facility through the weekend shift.",
        ),
        Document::new(
            "n6",
            "Gardens",
            "The garden show opens to record spring crowds.",
        ),
        Document::new(
            "n7",
            "Vaccines ship",
            "Vaccine doses ship to every region as the outbreak response accelerates.",
        ),
        Document::new(
            "n8",
            "Masks",
            "Masks are required indoors while the covid outbreak strains hospitals.",
        ),
    ]
}

fn post_on(state: &'static AppState, path: &str, body: &str) -> (u16, Vec<u8>) {
    let req = Request {
        method: "POST".into(),
        path: path.into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    (resp.status, resp.body)
}

/// Pinned generation 0 must answer byte-identically to a frozen engine
/// built from the same contents — across all four search strategies and
/// all four explainers — while a concurrent mutator drives the live
/// corpus generations ahead.
#[test]
fn pinned_generation_matches_frozen_engine_under_concurrent_mutation() {
    let live = AppState::leak(parity_docs(), EngineConfig::fast());
    let frozen = AppState::leak(parity_docs(), EngineConfig::fast());
    // Pin generation 0 for the whole test, the way an in-flight client
    // would: the registry keeps it readable while anything holds it.
    let pin = live
        .registry()
        .snapshot("default", Some(0))
        .expect("generation 0 is live");

    // The concurrent mutator: upserts and deletes folding into new
    // generations while the comparisons below are in flight.
    let corpus = live.registry().get("default").unwrap();
    let mutator = {
        let corpus = std::sync::Arc::clone(&corpus);
        std::thread::spawn(move || {
            let mut last = 0;
            for i in 0..6 {
                last = corpus.stage(DeltaOp::Upsert(Document::new(
                    format!("mut-{i}"),
                    "Mutation",
                    format!("freshly staged outbreak document number {i}"),
                )));
                std::thread::sleep(Duration::from_millis(2));
            }
            last = last.max(corpus.stage(DeltaOp::Delete("n6".to_string())));
            assert!(
                corpus.wait_for_seq(last, Duration::from_secs(30)),
                "mutations never folded"
            );
        })
    };

    let strategies = ["exhaustive", "pruned", "bmw", "sharded"];
    let explainers = [
        (
            "/api/v1/explain/sentence-removal",
            r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 2, "generation": 0}"#,
        ),
        (
            "/api/v1/explain/query-augmentation",
            r#"{"query": "covid outbreak", "k": 3, "doc": 4, "n": 2, "generation": 0}"#,
        ),
        (
            "/api/v1/explain/query-reduction",
            r#"{"query": "covid outbreak hospitals masks", "k": 3, "doc": 7, "generation": 0}"#,
        ),
        (
            "/api/v1/explain/term-removal",
            r#"{"query": "covid outbreak", "k": 2, "doc": 1, "n": 2, "generation": 0}"#,
        ),
    ];

    // Several passes so at least some run after generations have advanced.
    for round in 0..3 {
        for strategy in strategies {
            let body = format!(
                r#"{{"query": "covid outbreak", "k": 6, "generation": 0, "search_strategy": "{strategy}"}}"#
            );
            let (live_status, live_bytes) = post_on(live, "/api/v1/rank", &body);
            let (frozen_status, frozen_bytes) = post_on(frozen, "/api/v1/rank", &body);
            assert_eq!(live_status, 200, "round {round} strategy {strategy}");
            assert_eq!(frozen_status, 200);
            assert_eq!(
                live_bytes, frozen_bytes,
                "round {round}: pinned {strategy} ranking must be byte-identical to frozen"
            );
            // Spot-check the (doc, to_bits) contract explicitly.
            let v = parse(std::str::from_utf8(&live_bytes).unwrap()).unwrap();
            let w = parse(std::str::from_utf8(&frozen_bytes).unwrap()).unwrap();
            let rows = |val: &Value| -> Vec<(u64, u64)> {
                val.get("ranking")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|r| {
                        (
                            r.get("doc").unwrap().as_u64().unwrap(),
                            r.get("score").unwrap().as_f64().unwrap().to_bits(),
                        )
                    })
                    .collect()
            };
            assert_eq!(rows(&v), rows(&w));
        }
        for (path, body) in explainers {
            let (live_status, live_bytes) = post_on(live, path, body);
            let (frozen_status, frozen_bytes) = post_on(frozen, path, body);
            assert_eq!(live_status, 200, "round {round} {path}");
            assert_eq!(frozen_status, 200, "round {round} {path}");
            assert_eq!(
                live_bytes, frozen_bytes,
                "round {round}: pinned {path} payload must be byte-identical to frozen"
            );
        }
        std::thread::sleep(Duration::from_millis(4));
    }

    mutator.join().unwrap();
    assert!(
        corpus.generation() >= 1,
        "the mutator must have advanced the live generation"
    );

    // One final pass after every mutation folded: generation 0 stays
    // pinned and bit-stable even though the live corpus moved to G+k.
    let body = r#"{"query": "covid outbreak", "k": 6, "generation": 0}"#;
    let (_, live_bytes) = post_on(live, "/api/v1/rank", body);
    let (_, frozen_bytes) = post_on(frozen, "/api/v1/rank", body);
    assert_eq!(live_bytes, frozen_bytes);
    // And the live generation answers differently (the corpus changed).
    let (_, head_bytes) = post_on(
        live,
        "/api/v1/rank",
        r#"{"query": "covid outbreak", "k": 6}"#,
    );
    let head = parse(std::str::from_utf8(&head_bytes).unwrap()).unwrap();
    assert!(head.get("generation").unwrap().as_u64().unwrap() >= 1);
    drop(pin);
}

// --- async job pinning over real HTTP ------------------------------------

/// One long query-relevant document keeps the single worker busy.
fn job_docs() -> Vec<Document> {
    let mut body = String::new();
    for i in 0..48 {
        if i % 4 == 0 {
            body.push_str(&format!(
                "The covid outbreak update number n{i} arrives today. "
            ));
        } else {
            body.push_str(&format!(
                "Filler sentence number n{i} talks about daily life. "
            ));
        }
    }
    let mut docs = vec![Document::new("long", "Long covid doc", &body)];
    for i in 0..4 {
        docs.push(Document::new(
            &format!("pad-{i}"),
            "Report",
            "covid outbreak report with several extra words for normalisation",
        ));
    }
    docs
}

fn raw_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Value) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body_start = out.find("\r\n\r\n").unwrap() + 4;
    (status, parse(&out[body_start..]).expect("JSON body"))
}

/// A job admitted before a mutation executes against its pinned
/// generation: the document it explains is deleted from the live corpus
/// while the job is still queued, and the job completes anyway.
#[test]
fn queued_job_survives_mutation_of_its_document() {
    let state = AppState::leak_jobs(
        job_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig {
            workers: 1,
            queue_depth: 8,
            ..JobsConfig::default()
        },
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();

    // Occupy the single worker with a slow search.
    let (status, v) = raw_request(
        addr,
        "POST",
        "/api/v1/jobs",
        Some(
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid outbreak", "k": 1, "doc": 0, "n": 999,
                            "max_size": 3, "max_candidates": 48,
                            "eval_exact": true, "eval_threads": 1,
                            "deadline_ms": 2000}}"#,
        ),
    );
    assert_eq!(status, 202, "{v:?}");
    let slow_id = v.get("job_id").unwrap().as_str().unwrap().to_string();
    let t0 = Instant::now();
    loop {
        let (_, view) = raw_request(addr, "GET", &format!("/api/v1/jobs/{slow_id}"), None);
        if view.get("status").unwrap().as_str() != Some("queued") {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "never claimed");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Admit the job under test: it explains doc 0 ("long") at generation 0.
    let (status, v) = raw_request(
        addr,
        "POST",
        "/api/v1/jobs",
        Some(
            r#"{"endpoint": "sentence-removal",
                "request": {"query": "covid outbreak", "k": 1, "doc": 0, "n": 1,
                            "max_size": 1, "max_candidates": 4}}"#,
        ),
    );
    assert_eq!(status, 202, "{v:?}");
    assert_eq!(v.get("corpus").unwrap().as_str(), Some("default"));
    assert_eq!(v.get("generation").unwrap().as_u64(), Some(0));
    let job_id = v.get("job_id").unwrap().as_str().unwrap().to_string();

    // Delete that very document from the live corpus, waiting for the fold.
    let (status, v) = raw_request(
        addr,
        "DELETE",
        "/api/v1/corpora/default/docs/long",
        Some(r#"{"refresh": true}"#),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("status").unwrap().as_str(), Some("applied"));
    let mutated_gen = v.get("generation").unwrap().as_u64().unwrap();
    assert!(mutated_gen >= 1);

    // The job still completes, against generation 0, where the doc exists.
    let t0 = Instant::now();
    let result = loop {
        let (status, view) = raw_request(addr, "GET", &format!("/api/v1/jobs/{job_id}"), None);
        assert_eq!(status, 200);
        match view.get("status").unwrap().as_str().unwrap() {
            "queued" | "running" => {
                assert!(t0.elapsed() < Duration::from_secs(30), "job never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
            "complete" => break view,
            other => panic!("job ended {other}: {view:?}"),
        }
    };
    assert_eq!(result.get("corpus").unwrap().as_str(), Some("default"));
    assert_eq!(result.get("generation").unwrap().as_u64(), Some(0));
    let payload = result.get("result").unwrap();
    assert_eq!(
        payload.get("generation").unwrap().as_u64(),
        Some(0),
        "the stored payload must name the pinned generation"
    );
    assert!(payload.get("explanations").unwrap().as_array().is_some());

    // Live requests see the mutated corpus...
    let (status, v) = raw_request(
        addr,
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 6}"#),
    );
    assert_eq!(status, 200);
    assert!(v.get("generation").unwrap().as_u64().unwrap() >= 1);

    // ...and once nothing pins generation 0 any more, asking for it is 410.
    let (_, slow_view) = raw_request(addr, "GET", &format!("/api/v1/jobs/{slow_id}"), None);
    if slow_view.get("status").unwrap().as_str() == Some("running") {
        // Let the slow job (which also pins generation 0) drain first.
        let t0 = Instant::now();
        loop {
            let (_, view) = raw_request(addr, "GET", &format!("/api/v1/jobs/{slow_id}"), None);
            let s = view.get("status").unwrap().as_str().unwrap().to_string();
            if s != "queued" && s != "running" {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "slow job stuck");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let (status, v) = raw_request(
        addr,
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 6, "generation": 0}"#),
    );
    assert_eq!(status, 410, "{v:?}");
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("generation_gone")
    );

    handle.stop();
}
