//! End-to-end reproduction of the paper's demonstration scenarios
//! (Figures 2–5) over the recreated COVID-19 Articles corpus.
//!
//! Each test mirrors one figure of the paper and asserts the *shape* of the
//! published result: who ranks where, which perturbation is minimal, which
//! terms distinguish the fake-news article, and which instance document the
//! embedding model surfaces.

use credence_core::{
    CredenceEngine, Edit, EngineConfig, QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn with_engine<T>(f: impl FnOnce(&CredenceEngine<'_>, &credence_corpus::DemoCorpus) -> T) -> T {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
    f(&engine, &demo)
}

/// The running example's premise: the fake-news article ranks 3/10 for
/// "covid outbreak".
#[test]
fn running_example_premise() {
    with_engine(|engine, demo| {
        let ranking = engine.rank(demo.query, demo.k);
        assert_eq!(ranking.len(), 10);
        assert_eq!(ranking[2].doc, DocId(demo.fake_news as u32));
        assert_eq!(ranking[2].rank, 3);
    });
}

/// Figure 2: one sentence-removal counterfactual. The minimal perturbation
/// removes exactly the two sentences mentioning *covid* and *outbreak*
/// (importance 2 each, combination score 4), dropping the article from rank
/// 3 to rank 11 (> k = 10).
#[test]
fn figure2_sentence_removal() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        let result = engine
            .sentence_removal(demo.query, demo.k, doc, &SentenceRemovalConfig::default())
            .unwrap();
        assert_eq!(result.old_rank, 3);
        assert_eq!(result.explanations.len(), 1);
        let e = &result.explanations[0];

        // Minimal: exactly two sentences — the first and the last.
        assert_eq!(e.removed.len(), 2);
        assert_eq!(e.removed[0], 0, "first sentence removed");
        assert_eq!(
            e.removed[1],
            result.sentences.len() - 1,
            "last sentence removed"
        );
        // Both score 2; the combination scores 4 (the figure's narration).
        assert_eq!(result.importance[e.removed[0]], 2.0);
        assert_eq!(result.importance[e.removed[1]], 2.0);
        assert_eq!(e.importance, 4.0);
        // Rank 3 -> rank 11 = k + 1.
        assert_eq!(e.new_rank, demo.k + 1);
        // The perturbed body no longer mentions the query terms.
        let perturbed = e.perturbed_body.to_lowercase();
        assert!(!perturbed.contains("covid"));
        assert!(!perturbed.contains("outbreak"));
        // Every single-sentence removal was tried first and failed:
        // sentences + 1 evaluations to reach the first valid pair.
        assert_eq!(e.candidates_evaluated, result.sentences.len() + 1);
    });
}

/// Figure 3: seven query-augmentation counterfactuals with threshold 2.
/// "covid outbreak 5g" reaches rank 2 and "covid outbreak 5g microchip"
/// rank 1; the distinguishing terms carry the top TF-IDF scores.
#[test]
fn figure3_query_augmentation() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        let result = engine
            .query_augmentation(
                demo.query,
                demo.k,
                doc,
                &QueryAugmentationConfig {
                    n: 7,
                    threshold: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(result.old_rank, 3);
        assert_eq!(result.explanations.len(), 7, "seven explanations requested");
        for e in &result.explanations {
            assert!(e.new_rank <= 2, "threshold respected: {e:?}");
            assert!(e.augmented_query.starts_with("covid outbreak "));
        }
        // The distinguishing conspiracy terms appear among the augmentations.
        let all_terms: Vec<&str> = result
            .explanations
            .iter()
            .flat_map(|e| e.terms.iter().map(String::as_str))
            .collect();
        assert!(
            all_terms.iter().any(|t| t.contains("microchip")),
            "microchip among {all_terms:?}"
        );
        assert!(all_terms.contains(&"5g"), "5g among {all_terms:?}");

        // The two headline augmentations of the figure, checked directly.
        let r5g = engine.full_ranking("covid outbreak 5g").rank_of(doc);
        assert_eq!(r5g, Some(2), "covid outbreak 5G -> rank 2/10");
        let r5gm = engine
            .full_ranking("covid outbreak 5g microchip")
            .rank_of(doc);
        assert_eq!(r5gm, Some(1), "covid outbreak 5G microchip -> rank 1/10");
    });
}

/// Figure 4: the Doc2Vec-nearest instance-based counterfactual surfaces the
/// near-duplicate fake-news article, which is highly similar yet absent
/// from the original top-10.
#[test]
fn figure4_doc2vec_nearest_instance() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        let out = engine.doc2vec_nearest(demo.query, demo.k, doc, 1).unwrap();
        assert_eq!(out.len(), 1);
        let instance = &out[0];
        assert_eq!(
            instance.doc,
            DocId(demo.near_duplicate as u32),
            "the near-copy is the nearest non-relevant instance"
        );
        // The paper reports 75% similarity; we assert a healthy band rather
        // than the exact number (different embedding stack).
        assert!(
            instance.similarity > 0.4 && instance.similarity < 0.9999,
            "similarity {} should be high but not identical",
            instance.similarity
        );
        // Not among the top-10 for the original query.
        let ranking = engine.full_ranking(demo.query);
        match ranking.rank_of(instance.doc) {
            None => {}
            Some(r) => assert!(r > demo.k),
        }
    });
}

/// Figure 4, cosine-sampled variant: sampling non-relevant documents and
/// ranking them by BM25-score-vector cosine also surfaces the near-copy.
#[test]
fn figure4_cosine_sampled_instance() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        // s larger than the non-relevant pool => exhaustive.
        let out = engine
            .cosine_sampled(demo.query, demo.k, doc, 1, Some(1000))
            .unwrap();
        assert_eq!(out[0].doc, DocId(demo.near_duplicate as u32));
        assert!(out[0].similarity > 0.5);
    });
}

/// Figure 5: the builder. Replacing covid/covid-19 with "flu" and
/// "outbreak" with "the flu" lowers the article from rank 3 to rank 11
/// (= k+1) — the green check mark — and the pool report includes the
/// revealed rank-11 document.
#[test]
fn figure5_builder() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        let outcome = engine
            .builder_edits(
                demo.query,
                demo.k,
                doc,
                &[
                    Edit::replace("covid", "flu"),
                    Edit::replace("covid-19", "flu"),
                    Edit::replace("outbreak", "the flu"),
                ],
            )
            .unwrap();
        assert_eq!(outcome.old_rank, 3);
        assert_eq!(outcome.new_rank, demo.k + 1, "rank 3 -> 11");
        assert!(outcome.valid, "green check mark");
        assert_eq!(
            outcome.revealed,
            Some(DocId(demo.rank11 as u32)),
            "the flu-outbreak story is the revealed k+1 document"
        );
        // The edited body really lost the query terms.
        let lower = outcome.edited_body.to_lowercase();
        assert!(!lower.contains("covid"));
        assert!(!lower.contains("outbreak"));
        assert!(lower.contains("flu"));
        // Pool rows are a permutation of 1..=k+1 and everyone else moved up
        // or stayed.
        let mut ranks: Vec<usize> = outcome.rows.iter().map(|r| r.new_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=demo.k + 1).collect::<Vec<_>>());
        for row in outcome.rows.iter().filter(|r| !r.substituted) {
            assert!(row.movement() <= 0);
        }
    });
}

/// The Browse-Topics modal (§III-C): LDA over the ranked top-10 groups the
/// conspiracy vocabulary into a browsable topic.
#[test]
fn browse_topics_over_ranked_documents() {
    with_engine(|engine, demo| {
        let topics = engine.topics(demo.query, demo.k, 3).unwrap();
        assert_eq!(topics.len(), 3);
        let all_terms: Vec<&str> = topics
            .iter()
            .flat_map(|t| t.terms.iter().map(|(s, _)| s.as_str()))
            .collect();
        // The query's own terms dominate the ranked set.
        assert!(all_terms.contains(&"covid"));
        let weights: f64 = topics.iter().map(|t| t.weight).sum();
        assert!((weights - 1.0).abs() < 1e-9);
    });
}

/// Explanation validity is re-checkable end to end: re-running Figure 2's
/// accepted perturbation through the builder endpoint reports it valid.
#[test]
fn figure2_explanation_validates_through_builder() {
    with_engine(|engine, demo| {
        let doc = DocId(demo.fake_news as u32);
        let sr = engine
            .sentence_removal(demo.query, demo.k, doc, &SentenceRemovalConfig::default())
            .unwrap();
        let perturbed = &sr.explanations[0].perturbed_body;
        let outcome = engine
            .builder_rerank(demo.query, demo.k, doc, perturbed)
            .unwrap();
        assert!(outcome.valid);
        assert_eq!(outcome.new_rank, sr.explanations[0].new_rank);
    });
}
