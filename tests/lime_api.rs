//! End-to-end and property tests for the Rank-LIME feature-attribution
//! subsystem: the determinism contract (byte-identical payloads across
//! serial vs parallel evaluation, sync vs async-job delivery, and
//! cache-enabled vs cache-disabled servers, including straddling a
//! generation publish), surrogate-recovery guarantees, and the
//! `credence_explain_lime_*` metrics surface.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use credence_core::{explain_feature_attribution, EngineConfig, FeatureAttributionConfig};
use credence_index::{Bm25Params, DeltaOp, DocId, Document, InvertedIndex};
use credence_json::{parse, to_string, Value};
use credence_rank::{Bm25Ranker, Ranker};
use credence_repro::prop::gens;
use credence_repro::{prop, prop_assert, prop_assert_eq};
use credence_server::http::Request;
use credence_server::{
    handle_request, AppState, ExplainCacheConfig, JobsConfig, RankerChoice, Server,
};
use credence_text::Analyzer;

fn demo_docs() -> Vec<Document> {
    vec![
        Document::new(
            "n1",
            "Outbreak news",
            "covid outbreak covid outbreak dominates the news cycle this week entirely",
        ),
        Document::new(
            "n2",
            "Quiet arrival",
            "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
             for weeks before acting decisively.",
        ),
        Document::new(
            "n3",
            "Conspiracy corner",
            "The covid outbreak is a cover story. A secret microchip hides in every \
             vaccine dose. The microchip tracks your movements constantly.",
        ),
        Document::new(
            "n4",
            "Copycat",
            "A secret microchip hides in every vaccine dose. The microchip tracks your \
             movements constantly and secretly.",
        ),
        Document::new(
            "n5",
            "Harbor drills",
            "Outbreak drills continue at the harbor facility through the weekend shift.",
        ),
        Document::new(
            "n6",
            "Gardens",
            "The garden show opens to record spring crowds.",
        ),
    ]
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body_start = out.find("\r\n\r\n").unwrap() + 4;
    (status, out[body_start..].to_string())
}

/// Read one counter value out of a `/metrics` scrape.
fn metric(text: &str, family: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {family} in scrape"))
}

const BASE_BODY: &str =
    r#"{"query": "covid outbreak", "k": 4, "doc": 2, "samples": 96, "seed": 9, "top_m": 8}"#;

/// The same seeded request must produce byte-identical payloads whether
/// the samples are scored serially or batch-parallel, whether it is
/// answered synchronously or through the async job queue, and whether it
/// is recomputed or served from the explanation cache.
#[test]
fn payload_is_byte_identical_across_eval_and_delivery_paths() {
    let state = AppState::leak_full(
        demo_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig::default(),
        ExplainCacheConfig::default(),
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();
    let path = "/api/v1/explain/feature_attribution";

    let (status, base) = raw_request(addr, "POST", path, Some(BASE_BODY));
    assert_eq!(status, 200, "{base}");
    let v = parse(&base).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("complete"));
    assert!(
        !v.get("attributions")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "{base}"
    );

    // Forced-serial and forced-parallel recomputation (cache bypassed so
    // the search actually runs; eval knobs are excluded from the key).
    for knobs in [
        r#", "eval_threads": 1, "explain_cache_bypass": true"#,
        r#", "eval_threads": 4, "eval_parallel_threshold": 1, "explain_cache_bypass": true"#,
        r#", "eval_exact": true, "eval_threads": 1, "explain_cache_bypass": true"#,
    ] {
        let body = format!("{}{knobs}}}", BASE_BODY.trim_end_matches('}'));
        let (status, got) = raw_request(addr, "POST", path, Some(&body));
        assert_eq!(status, 200, "{got}");
        assert_eq!(got, base, "eval knobs {knobs:?} changed the payload");
    }

    // Cache hit: repeat the canonical request and confirm the scrape saw it.
    let (status, repeat) = raw_request(addr, "POST", path, Some(BASE_BODY));
    assert_eq!(status, 200);
    assert_eq!(repeat, base);
    let (_, scrape) = raw_request(addr, "GET", "/metrics", None);
    assert!(metric(&scrape, "credence_explain_cache_hits_total") >= 1);

    // Async delivery: the job result is the same payload object.
    let envelope = format!(r#"{{"endpoint": "feature_attribution", "request": {BASE_BODY}}}"#);
    let (status, submitted) = raw_request(addr, "POST", "/api/v1/jobs", Some(&envelope));
    assert_eq!(status, 202, "{submitted}");
    let wire = parse(&submitted)
        .unwrap()
        .get("job_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let numeric: u64 = wire.strip_prefix("job-").unwrap().parse().unwrap();
    assert_eq!(
        state.jobs().wait_terminal(numeric, Duration::from_secs(30)),
        Some(credence_server::JobState::Complete)
    );
    let (status, view) = raw_request(addr, "GET", &format!("/api/v1/jobs/{wire}"), None);
    assert_eq!(status, 200);
    let view = parse(&view).unwrap();
    assert_eq!(view.get("result_status").unwrap().as_u64(), Some(200));
    assert_eq!(
        to_string(view.get("result").unwrap()),
        base,
        "job payload must round-trip to the synchronous bytes"
    );
    handle.stop();
}

/// A generation publish must invalidate by keying: the cached server's
/// post-publish response carries the new generation and is byte-identical
/// to a forced recomputation — never stale bytes from the old snapshot.
#[test]
fn generation_publish_invalidates_by_keying() {
    let state = AppState::leak_full(
        demo_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig::default(),
        ExplainCacheConfig::default(),
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();
    let path = "/api/v1/explain/feature_attribution";

    let (status, before) = raw_request(addr, "POST", path, Some(BASE_BODY));
    assert_eq!(status, 200, "{before}");
    let gen_before = parse(&before)
        .unwrap()
        .get("generation")
        .unwrap()
        .as_u64()
        .unwrap();

    let corpus = state.registry().get("default").unwrap();
    let seq = corpus.stage(DeltaOp::Upsert(Document::new(
        "extra",
        "Filler",
        "spring regatta filler text with no outbreak terms",
    )));
    assert!(corpus.wait_for_seq(seq, Duration::from_secs(10)));

    let (status, after) = raw_request(addr, "POST", path, Some(BASE_BODY));
    assert_eq!(status, 200, "{after}");
    let gen_after = parse(&after)
        .unwrap()
        .get("generation")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        gen_after > gen_before,
        "publish must advance the generation"
    );
    assert_ne!(
        after, before,
        "the stale pre-publish payload leaked through"
    );

    let bypass = format!(
        "{}{}}}",
        BASE_BODY.trim_end_matches('}'),
        r#", "explain_cache_bypass": true"#
    );
    let (status, fresh) = raw_request(addr, "POST", path, Some(&bypass));
    assert_eq!(status, 200);
    assert_eq!(
        after, fresh,
        "post-publish cached payload must match a forced recomputation"
    );
    handle.stop();
}

/// The discovery index advertises the route and the scrape renders every
/// `credence_explain_lime_*` family once attributions have run.
#[test]
fn metrics_families_and_discovery_index_cover_the_endpoint() {
    let state = AppState::leak_full(
        demo_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig::default(),
        ExplainCacheConfig::default(),
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();

    let (status, index) = raw_request(addr, "GET", "/api/v1", None);
    assert_eq!(status, 200);
    let index = parse(&index).unwrap();
    let routes = index.get("routes").unwrap().as_array().unwrap();
    assert!(
        routes.iter().any(|r| {
            r.get("path").and_then(Value::as_str) == Some("/api/v1/explain/feature_attribution")
                && r.get("method").and_then(Value::as_str) == Some("POST")
                && r.get("deprecated").and_then(Value::as_bool) == Some(false)
        }),
        "discovery index must list the canonical feature_attribution route"
    );

    let (status, body) = raw_request(
        addr,
        "POST",
        "/api/v1/explain/feature_attribution",
        Some(BASE_BODY),
    );
    assert_eq!(status, 200, "{body}");
    let payload = parse(&body).unwrap();
    let attributions = payload.get("attributions").unwrap().as_array().unwrap();

    let (_, scrape) = raw_request(addr, "GET", "/metrics", None);
    assert_eq!(metric(&scrape, "credence_explain_lime_fits_total"), 1);
    assert_eq!(
        metric(&scrape, "credence_explain_lime_samples_total"),
        payload
            .get("candidates_evaluated")
            .unwrap()
            .as_u64()
            .unwrap()
    );
    assert_eq!(
        metric(&scrape, "credence_explain_lime_attributions_total"),
        attributions.len() as u64
    );
    assert_eq!(metric(&scrape, "credence_explain_lime_partials_total"), 0);
    for family in [
        "credence_explain_lime_fits_total",
        "credence_explain_lime_samples_total",
        "credence_explain_lime_attributions_total",
        "credence_explain_lime_partials_total",
        "credence_explain_lime_fidelity_avg",
    ] {
        assert!(
            scrape.contains(&format!("# TYPE {family} ")),
            "missing TYPE line for {family}"
        );
    }
    handle.stop();
}

// ---------------------------------------------------------------------------
// Byte-parity property: cached server vs uncached server.
// ---------------------------------------------------------------------------

struct StatePair {
    cached: &'static AppState,
    uncached: &'static AppState,
}

/// One cached + one cache-disabled server, built once. Cache state
/// deliberately persists across property cases: parity must hold
/// whatever mixture of hits, misses, and coalesced flights a request
/// sequence produces.
fn state_pair() -> &'static StatePair {
    static STATES: OnceLock<StatePair> = OnceLock::new();
    STATES.get_or_init(|| {
        let build = |entries: usize| {
            AppState::leak_full(
                demo_docs(),
                EngineConfig::fast(),
                RankerChoice::Bm25,
                JobsConfig::default(),
                ExplainCacheConfig { entries },
            )
        };
        StatePair {
            cached: build(512),
            uncached: build(0),
        }
    })
}

const QUERIES: [&str; 3] = ["covid outbreak", "microchip", "covid"];

/// Decode one generated code point into a feature-attribution request.
/// The space is small (1944 distinct requests) so sequences carry
/// duplicates by construction, and duplicates also recur across cases
/// against the same warm cache.
fn decode(code: u32) -> String {
    let mut c = code as usize;
    let query = QUERIES[c % 3];
    c /= 3;
    let k = 1 + (c % 3);
    c /= 3;
    let doc = c % 6;
    c /= 6;
    let samples = 16 + 16 * (c % 3);
    c /= 3;
    let seed = c % 4;
    c /= 4;
    let top_m = 2 + (c % 3);
    format!(
        r#"{{"query": "{query}", "k": {k}, "doc": {doc}, "samples": {samples}, "seed": {seed}, "top_m": {top_m}}}"#
    )
}

fn post_on(state: &'static AppState, body: &str) -> (u16, Vec<u8>) {
    let req = Request {
        method: "POST".into(),
        path: "/api/v1/explain/feature_attribution".into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    (resp.status, resp.body)
}

/// Publish a new generation on both servers by upserting a uniquely-named
/// filler document, so their corpora stay identical and every prior cache
/// key for the live generation goes stale.
fn publish_on(pair: &StatePair) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    for state in [pair.cached, pair.uncached] {
        let corpus = state.registry().get("default").unwrap();
        let seq = corpus.stage(DeltaOp::Upsert(Document::new(
            &format!("extra-{id}"),
            "Filler",
            "spring regatta filler text with no outbreak terms",
        )));
        assert!(corpus.wait_for_seq(seq, Duration::from_secs(10)));
    }
}

// For random duplicate-bearing request sequences, the cached server's
// feature-attribution response is byte-identical to the cache-disabled
// server's — including straddling a generation publish, which must
// invalidate by keying rather than by serving stale bytes.
prop! {
    config(cases = 12);
    fn cached_attributions_match_uncached_server_byte_for_byte(
        codes in gens::vec_of(gens::u32_range(0..1944), 2..8),
        publish_at in gens::u32_range(0..8),
    ) {
        let pair = state_pair();
        for (i, &code) in codes.iter().enumerate() {
            if i as u32 == *publish_at {
                publish_on(pair);
            }
            let body = decode(code);
            let (cached_status, cached_body) = post_on(pair.cached, &body);
            let (fresh_status, fresh_body) = post_on(pair.uncached, &body);
            prop_assert_eq!(cached_status, fresh_status);
            prop_assert!(
                cached_body == fresh_body,
                "byte mismatch for {}: cached={:?} fresh={:?}",
                body,
                String::from_utf8_lossy(&cached_body),
                String::from_utf8_lossy(&fresh_body)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Surrogate properties: determinism, support, and linear recovery.
// ---------------------------------------------------------------------------

// The sampler is a pure function of its seed: the same request computed
// twice from scratch yields the same result, and a different seed draws
// different masks (so equality is not vacuous).
prop! {
    config(cases = 12);
    fn same_seed_reproduces_the_attribution_exactly(
        seed in gens::u64_any(),
        samples in gens::usize_range(8..64),
    ) {
        let index = InvertedIndex::build(demo_docs(), Analyzer::english());
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        let config = FeatureAttributionConfig {
            samples: *samples,
            seed: *seed,
            ..FeatureAttributionConfig::default()
        };
        let a = explain_feature_attribution(&ranker, "covid outbreak", 4, DocId(2), &config)
            .unwrap();
        let b = explain_feature_attribution(&ranker, "covid outbreak", 4, DocId(2), &config)
            .unwrap();
        prop_assert_eq!(&a, &b);
    }
}

// A term that never occurs in the document cannot receive attribution
// mass: the surrogate's features are drawn from the document surface, so
// an absent query term simply is not a feature.
prop! {
    config(cases = 12);
    fn absent_query_terms_get_no_attribution(
        seed in gens::u64_any(),
        doc in gens::usize_range(0..4),
    ) {
        let index = InvertedIndex::build(demo_docs(), Analyzer::english());
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        let config = FeatureAttributionConfig {
            samples: 32,
            seed: *seed,
            ..FeatureAttributionConfig::default()
        };
        let result = explain_feature_attribution(
            &ranker,
            "covid zebra",
            6,
            DocId(*doc as u32),
            &config,
        );
        if let Ok(result) = result {
            prop_assert!(
                result.attributions.iter().all(|a| a.term != "zebra"),
                "absent term attributed: {:?}",
                result.attributions
            );
        }
    }
}

/// A ranker whose score is exactly linear in analysed token counts:
/// `score(body) = Σ_token weight(token)`. Under it a term-masked variant's
/// score is an exact linear function of the mask, so the λ=0 surrogate
/// must recover each term's true contribution (weight × occurrences).
struct LinearRanker<'a> {
    index: &'a InvertedIndex,
    analyzer: Analyzer,
}

impl LinearRanker<'_> {
    fn weight(token: &str) -> f64 {
        match token {
            "alpha" => 2.0,
            "beta" => 0.7,
            "gamma" => 1.3,
            "delta" => 0.1,
            _ => 0.0,
        }
    }
}

impl Ranker for LinearRanker<'_> {
    fn name(&self) -> &str {
        "linear-bow"
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        let body = &self.index.document(doc).unwrap().body;
        self.score_text(query, body)
    }

    fn score_text(&self, _query: &str, body: &str) -> f64 {
        self.analyzer
            .analyze(body)
            .iter()
            .map(|t| Self::weight(t))
            .sum()
    }
}

// With λ = 0 and the linear bag-of-words ranker the weighted
// least-squares surrogate is not an approximation: it recovers each
// term's exact contribution and explains all the score variance.
prop! {
    config(cases = 12);
    fn lambda_zero_recovers_linear_term_weights(seed in gens::u64_any()) {
        let docs = vec![
            Document::new("t", "Target", "alpha beta beta gamma delta"),
            Document::new("p1", "Pad", "alpha gamma"),
            Document::new("p2", "Pad", "beta delta"),
        ];
        let index = InvertedIndex::build(docs, Analyzer::english());
        let ranker = LinearRanker {
            index: &index,
            analyzer: Analyzer::english(),
        };
        let config = FeatureAttributionConfig {
            samples: 64,
            seed: *seed,
            lambda: 0.0,
            top_m: 10,
            ..FeatureAttributionConfig::default()
        };
        let result =
            explain_feature_attribution(&ranker, "alpha beta gamma", 3, DocId(0), &config)
                .unwrap();
        prop_assert!(
            result.fidelity > 0.999,
            "exact linear model must be fully explained, fidelity = {}",
            result.fidelity
        );
        for (term, expected) in [
            ("alpha", 2.0),
            ("beta", 2.0 * 0.7),
            ("gamma", 1.3),
            ("delta", 0.1),
        ] {
            let got = result
                .attributions
                .iter()
                .find(|a| a.term == term)
                .map(|a| a.weight)
                .unwrap_or_else(|| panic!("{term} missing from {:?}", result.attributions));
            prop_assert!(
                (got - expected).abs() < 1e-6,
                "{term}: recovered {got}, true contribution {expected}"
            );
        }
    }
}
