//! Integration tests for the extension modules: term-level counterfactuals,
//! the saliency baseline, explanation metrics, feature-aware ranking with
//! feature counterfactuals, index persistence, and PV-DM — all exercised on
//! the demo corpus end to end.

use credence_core::metrics::{
    certify_minimality, jaccard_at_k, kendall_tau, verify_sentence_removal,
};
use credence_core::{
    explain_feature_changes, explain_saliency, explain_sentence_removal, explain_term_removal,
    FeatureCfConfig, SaliencyUnit, SentenceRemovalConfig, TermRemovalConfig,
};
use credence_corpus::covid_demo_corpus;
use credence_embed::{PvDm, PvDmConfig};
use credence_index::{read_index, write_index, Bm25Params, DocId, InvertedIndex};
use credence_rank::{rank_corpus, Bm25Ranker, FeatureRanker, FeatureSchema};
use credence_text::Analyzer;

fn setup() -> (InvertedIndex, credence_corpus::DemoCorpus) {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    (index, demo)
}

#[test]
fn term_removal_on_the_fake_news_article() {
    let (index, demo) = setup();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let fake = DocId(demo.fake_news as u32);
    let result = explain_term_removal(
        &ranker,
        demo.query,
        demo.k,
        fake,
        &TermRemovalConfig::default(),
    )
    .unwrap();
    let e = &result.explanations[0];
    assert!(e.new_rank > demo.k);
    // Term removal needs at most the two query terms.
    assert!(e.removed_terms.len() <= 2, "{:?}", e.removed_terms);
    assert!(e
        .removed_terms
        .iter()
        .all(|t| t == "covid" || t == "outbreak"));
}

#[test]
fn saliency_on_the_fake_news_article_matches_fig2_structure() {
    let (index, demo) = setup();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let fake = DocId(demo.fake_news as u32);
    let exp = explain_saliency(&ranker, demo.query, fake, SaliencyUnit::Sentence).unwrap();
    // The two most salient sentences are exactly the Fig-2 counterfactual
    // pair: the first and the last.
    let top2: Vec<usize> = exp.weights[..2].iter().map(|w| w.index).collect();
    assert!(top2.contains(&0));
    assert!(top2.contains(&(exp.weights.len() - 1)));
}

#[test]
fn fig2_explanation_passes_metric_checks() {
    let (index, demo) = setup();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let fake = DocId(demo.fake_news as u32);
    let result = explain_sentence_removal(
        &ranker,
        demo.query,
        demo.k,
        fake,
        &SentenceRemovalConfig::default(),
    )
    .unwrap();
    let e = &result.explanations[0];
    assert!(verify_sentence_removal(
        &ranker, demo.query, demo.k, fake, e
    ));
    assert!(certify_minimality(&ranker, demo.query, demo.k, fake, e));
}

#[test]
fn ranker_agreement_metrics_are_sane() {
    let (index, _) = setup();
    let bm25 = Bm25Ranker::new(&index, Bm25Params::default());
    let robertson = Bm25Ranker::new(&index, Bm25Params::robertson());
    let a = rank_corpus(&bm25, "covid outbreak");
    let b = rank_corpus(&robertson, "covid outbreak");
    // Same model family with different parameters: strong but imperfect
    // agreement.
    let tau = kendall_tau(&a, &b).unwrap();
    assert!(tau > 0.5, "tau {tau}");
    let jac = jaccard_at_k(&a, &b, 10);
    assert!(jac > 0.5, "jaccard {jac}");
    // Self-agreement is perfect.
    assert_eq!(kendall_tau(&a, &a), Some(1.0));
    assert_eq!(jaccard_at_k(&a, &a, 10), 1.0);
}

#[test]
fn feature_counterfactuals_on_the_demo_corpus() {
    let (index, demo) = setup();
    // Give the fake-news article strong features so a feature change can
    // matter, and everyone else mediocre ones.
    let features: Vec<Vec<f64>> = (0..index.num_docs())
        .map(|i| {
            if i == demo.fake_news {
                vec![0.9, 0.9]
            } else {
                vec![0.4, 0.4]
            }
        })
        .collect();
    let ranker = FeatureRanker::new(
        &index,
        Bm25Ranker::new(&index, Bm25Params::default()),
        FeatureSchema::new(["recency", "popularity"]),
        vec![1.5, 1.0],
        features,
    );
    let fake = DocId(demo.fake_news as u32);
    let ranking = rank_corpus(&ranker, demo.query);
    let rank = ranking.rank_of(fake).unwrap();
    assert!(rank <= demo.k, "boosted features keep it in the top-k");

    let result = explain_feature_changes(
        &ranker,
        demo.query,
        demo.k,
        fake,
        &FeatureCfConfig::default(),
    )
    .unwrap();
    if let Some(e) = result.explanations.first() {
        assert!(e.new_rank > demo.k);
        assert!(!e.changes.is_empty());
        for c in &e.changes {
            assert_eq!(c.to, 0.0, "positive weights push features to zero");
        }
    }
}

#[test]
fn persisted_demo_index_supports_the_full_pipeline() {
    let (index, demo) = setup();
    let mut buf = Vec::new();
    write_index(&index, &mut buf).unwrap();
    let loaded = read_index(buf.as_slice()).unwrap();

    let ranker = Bm25Ranker::new(&loaded, Bm25Params::default());
    let fake = DocId(demo.fake_news as u32);
    let ranking = rank_corpus(&ranker, demo.query);
    assert_eq!(
        ranking.rank_of(fake),
        Some(3),
        "rank 3 survives persistence"
    );

    let result = explain_sentence_removal(
        &ranker,
        demo.query,
        demo.k,
        fake,
        &SentenceRemovalConfig::default(),
    )
    .unwrap();
    assert_eq!(result.explanations[0].new_rank, demo.k + 1);
}

#[test]
fn pvdm_also_separates_the_near_duplicate() {
    let (index, demo) = setup();
    let analyzer = index.analyzer();
    let seqs: Vec<Vec<usize>> = index
        .documents()
        .iter()
        .map(|d| {
            analyzer
                .analyze(&d.body)
                .iter()
                .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
                .collect()
        })
        .collect();
    let model = PvDm::train(
        &seqs,
        index.vocabulary().len(),
        &PvDmConfig {
            dim: 24,
            epochs: 15,
            ..Default::default()
        },
    );
    let sim_dup = model.similarity(demo.fake_news, demo.near_duplicate);
    // Average similarity of the fake article to everything else.
    let mut others = 0.0;
    let mut count = 0;
    for d in 0..index.num_docs() {
        if d != demo.fake_news && d != demo.near_duplicate {
            others += model.similarity(demo.fake_news, d);
            count += 1;
        }
    }
    let avg = others / count as f64 as f32;
    assert!(
        sim_dup > avg,
        "PV-DM near-duplicate sim {sim_dup} should beat average {avg}"
    );
}

#[test]
fn saliency_is_consistent_across_granularities() {
    let (index, demo) = setup();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let fake = DocId(demo.fake_news as u32);
    let by_term = explain_saliency(&ranker, demo.query, fake, SaliencyUnit::Term).unwrap();
    // The top term saliencies are exactly the query terms.
    let top2: Vec<&str> = by_term.weights[..2]
        .iter()
        .map(|w| w.unit.as_str())
        .collect();
    assert!(top2.contains(&"covid"));
    assert!(top2.contains(&"outbreak"));
}
