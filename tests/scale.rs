//! Scale smoke tests: the full pipeline stays interactive on a corpus an
//! order of magnitude larger than the demo, and the parallel ranking path
//! agrees with the serial one end to end.

use std::time::Instant;

use credence_core::{
    explain_query_augmentation, explain_sentence_removal, CredenceEngine, EngineConfig,
    QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_corpus::{SynthConfig, SyntheticCorpus};
use credence_embed::Doc2VecConfig;
use credence_index::{Bm25Params, InvertedIndex};
use credence_rank::{rank_corpus, rank_corpus_parallel, Bm25Ranker};
use credence_text::Analyzer;

fn corpus() -> (SyntheticCorpus, InvertedIndex) {
    let corpus = SyntheticCorpus::generate(SynthConfig {
        num_docs: 800,
        seed: 99,
        ..SynthConfig::default()
    });
    let index = InvertedIndex::build(corpus.docs.clone(), Analyzer::english());
    (corpus, index)
}

#[test]
fn explainers_stay_interactive_at_scale() {
    let (corpus, index) = corpus();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(2, 3);
    let k = 10;

    let start = Instant::now();
    let ranking = rank_corpus(&ranker, &query);
    let doc = *ranking.top_k(k).last().expect("matches exist");

    let sr = explain_sentence_removal(&ranker, &query, k, doc, &SentenceRemovalConfig::default())
        .expect("sr at scale");
    let old_rank = ranking.rank_of(doc).unwrap();
    if old_rank > 1 {
        let _ = explain_query_augmentation(
            &ranker,
            &query,
            k,
            doc,
            &QueryAugmentationConfig {
                n: 1,
                threshold: old_rank - 1,
                ..Default::default()
            },
        )
        .expect("qa at scale");
    }
    // Generous bound: the whole flow (rank + two explainers) in debug mode
    // stays well under interactive latency budgets.
    assert!(
        start.elapsed().as_secs() < 30,
        "pipeline too slow: {:?}",
        start.elapsed()
    );
    // Any explanation found must be valid.
    for e in &sr.explanations {
        assert!(e.new_rank > k);
    }
}

#[test]
fn parallel_and_serial_rankings_agree_at_scale() {
    let (corpus, index) = corpus();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    for topic in 0..3 {
        let query = corpus.topic_query(topic, 2);
        let serial = rank_corpus(&ranker, &query);
        let parallel = rank_corpus_parallel(&ranker, &query, 8);
        assert_eq!(serial.entries(), parallel.entries(), "topic {topic}");
    }
}

#[test]
fn engine_with_parallel_threshold_explains_at_scale() {
    let (corpus, index) = corpus();
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(
        &ranker,
        EngineConfig {
            parallel_threshold: 100, // force the parallel path
            doc2vec: Doc2VecConfig {
                dim: 8,
                epochs: 1,
                infer_epochs: 2,
                ..Doc2VecConfig::default()
            },
            ..EngineConfig::fast()
        },
    );
    let query = corpus.topic_query(1, 3);
    let rows = engine.rank(&query, 10);
    assert_eq!(rows.len(), 10);
    // Cached second call returns identical rows.
    let again = engine.rank(&query, 10);
    assert_eq!(rows, again);
    assert_eq!(engine.cached_queries(), 1);
}
