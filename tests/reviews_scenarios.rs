//! Domain-generality integration test: the full explanation pipeline over
//! the product-reviews corpus (astroturf scenario), mirroring what
//! `tests/demo_scenarios.rs` does for the COVID corpus.

use credence_core::{
    CredenceEngine, Edit, EngineConfig, QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_corpus::reviews_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn with_engine<T>(f: impl FnOnce(&CredenceEngine<'_>, &credence_corpus::ReviewsCorpus) -> T) -> T {
    let demo = reviews_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
    f(&engine, &demo)
}

#[test]
fn shill_review_ranks_in_top_k() {
    with_engine(|engine, demo| {
        let ranking = engine.rank(demo.query, demo.k);
        assert!(ranking.iter().any(|r| r.doc == DocId(demo.shill as u32)));
    });
}

#[test]
fn sentence_removal_explains_the_shill() {
    with_engine(|engine, demo| {
        let shill = DocId(demo.shill as u32);
        let result = engine
            .sentence_removal(demo.query, demo.k, shill, &SentenceRemovalConfig::default())
            .unwrap();
        let e = &result.explanations[0];
        assert!(e.new_rank > demo.k);
        // The removed sentences carry the battery-life claims.
        assert!(e
            .removed_text
            .iter()
            .any(|t| t.to_lowercase().contains("battery")));
    });
}

#[test]
fn query_augmentation_surfaces_astroturf_vocabulary() {
    with_engine(|engine, demo| {
        let shill = DocId(demo.shill as u32);
        let old_rank = engine
            .full_ranking(demo.query)
            .rank_of(shill)
            .expect("ranked");
        if old_rank == 1 {
            return; // nothing to raise
        }
        let result = engine
            .query_augmentation(
                demo.query,
                demo.k,
                shill,
                &QueryAugmentationConfig {
                    n: 8,
                    threshold: old_rank - 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!result.explanations.is_empty());
        // The candidate list contains the giveaway vocabulary with top-tier
        // TF-IDF (exclusive to the shill among the ranked set).
        let shill_terms = ["promo", "coupon", "influencer", "giveaway"];
        let top_candidates: Vec<&str> = result
            .candidates
            .iter()
            .take(15)
            .map(|c| c.surface.as_str())
            .collect();
        assert!(
            shill_terms.iter().any(|t| top_candidates.contains(t)),
            "expected giveaway vocabulary among {top_candidates:?}"
        );
    });
}

#[test]
fn instance_explainers_find_the_template_copy() {
    with_engine(|engine, demo| {
        let shill = DocId(demo.shill as u32);
        let d2v = engine
            .doc2vec_nearest(demo.query, demo.k, shill, 1)
            .unwrap();
        assert_eq!(d2v[0].doc, DocId(demo.shill_copy as u32), "doc2vec");
        let cs = engine
            .cosine_sampled(demo.query, demo.k, shill, 1, Some(1000))
            .unwrap();
        assert_eq!(cs[0].doc, DocId(demo.shill_copy as u32), "cosine");
    });
}

#[test]
fn builder_can_disarm_the_shill() {
    with_engine(|engine, demo| {
        let shill = DocId(demo.shill as u32);
        let outcome = engine
            .builder_edits(
                demo.query,
                demo.k,
                shill,
                &[Edit::remove("battery"), Edit::remove("life")],
            )
            .unwrap();
        assert!(outcome.valid, "{outcome:?}");
        assert!(outcome.new_rank > demo.k);
    });
}

#[test]
fn topics_over_reviews_are_browsable() {
    with_engine(|engine, demo| {
        let topics = engine.topics(demo.query, demo.k, 2).unwrap();
        assert_eq!(topics.len(), 2);
        let all: Vec<&str> = topics
            .iter()
            .flat_map(|t| t.terms.iter().map(|(s, _)| s.as_str()))
            .collect();
        assert!(all.contains(&"batteri"), "stemmed battery among {all:?}");
    });
}
