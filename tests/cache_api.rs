//! End-to-end and property tests for the cross-request explanation cache:
//! single-flight coalescing over real TCP sockets, deadline-bounded
//! waiting, and byte-parity of cached responses against an uncached
//! server across explainers, retrieval strategies, and generation
//! publishes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use credence_core::EngineConfig;
use credence_index::{DeltaOp, Document, SearchStrategy};
use credence_json::parse;
use credence_repro::prop::gens;
use credence_repro::{prop, prop_assert, prop_assert_eq};
use credence_server::http::Request;
use credence_server::{
    handle_request, AppState, ExplainCacheConfig, JobsConfig, RankerChoice, Server,
};

fn demo_docs() -> Vec<Document> {
    vec![
        Document::new(
            "n1",
            "Outbreak news",
            "covid outbreak covid outbreak dominates the news cycle this week entirely",
        ),
        Document::new(
            "n2",
            "Quiet arrival",
            "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
             for weeks before acting decisively.",
        ),
        Document::new(
            "n3",
            "Conspiracy corner",
            "The covid outbreak is a cover story. A secret microchip hides in every \
             vaccine dose. The microchip tracks your movements constantly.",
        ),
        Document::new(
            "n4",
            "Copycat",
            "A secret microchip hides in every vaccine dose. The microchip tracks your \
             movements constantly and secretly.",
        ),
        Document::new(
            "n5",
            "Harbor drills",
            "Outbreak drills continue at the harbor facility through the weekend shift.",
        ),
        Document::new(
            "n6",
            "Gardens",
            "The garden show opens to record spring crowds.",
        ),
    ]
}

/// One long query-relevant document: an exact-serial sentence-removal
/// search over it runs for hundreds of milliseconds, long enough for
/// concurrent requests to pile onto one flight.
fn slow_docs() -> Vec<Document> {
    let mut body = String::new();
    for i in 0..40 {
        if i % 4 == 0 {
            body.push_str(&format!(
                "The covid outbreak update number n{i} arrives today. "
            ));
        } else {
            body.push_str(&format!(
                "Filler sentence number n{i} talks about daily life. "
            ));
        }
    }
    let mut docs = vec![Document::new("long", "Long covid doc", &body)];
    for i in 0..4 {
        docs.push(Document::new(
            &format!("pad-{i}"),
            "Report",
            "covid outbreak report with several extra words for normalisation",
        ));
    }
    docs
}

/// A sentence-removal body whose exact-serial search is slow but bounded.
fn slow_body(extra: &str) -> String {
    format!(
        r#"{{"query": "covid outbreak", "k": 1, "doc": 0, "n": 999,
            "max_size": 2, "max_candidates": 40,
            "eval_exact": true, "eval_threads": 1{extra}}}"#
    )
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body_start = out.find("\r\n\r\n").unwrap() + 4;
    (status, out[body_start..].to_string())
}

/// Read one metric value out of a `/metrics` scrape.
fn metric(text: &str, family: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {family} in scrape"))
}

#[test]
fn concurrent_identical_explains_run_one_search() {
    let state = AppState::leak_full(
        slow_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig::default(),
        ExplainCacheConfig::default(),
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();

    const N: usize = 6;
    let gate = std::sync::Arc::new(std::sync::Barrier::new(N));
    let threads: Vec<_> = (0..N)
        .map(|_| {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                raw_request(
                    addr,
                    "POST",
                    "/api/v1/explain/sentence-removal",
                    Some(&slow_body("")),
                )
            })
        })
        .collect();
    let results: Vec<(u16, String)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (status, body) in &results {
        assert_eq!(*status, 200);
        assert_eq!(
            body, &results[0].1,
            "all coalesced responses are byte-identical"
        );
    }

    let (_, scrape) = raw_request(addr, "GET", "/metrics", None);
    let misses = metric(&scrape, "credence_explain_cache_misses_total");
    let coalesced = metric(&scrape, "credence_explain_cache_coalesced_total");
    let hits = metric(&scrape, "credence_explain_cache_hits_total");
    assert_eq!(misses, 1, "exactly one underlying search ran");
    assert_eq!(
        coalesced + hits,
        N as u64 - 1,
        "every other request was coalesced onto the flight or hit the cache"
    );
    handle.stop();
}

#[test]
fn coalesced_waiter_honors_its_short_deadline() {
    let state = AppState::leak_full(
        slow_docs(),
        EngineConfig::fast(),
        RankerChoice::Bm25,
        JobsConfig::default(),
        ExplainCacheConfig::default(),
    );
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();

    // Leader: no deadline, computes the slow search.
    let leader = std::thread::spawn(move || {
        raw_request(
            addr,
            "POST",
            "/api/v1/explain/sentence-removal",
            Some(&slow_body("")),
        )
    });
    // Give the leader a head start so the waiter joins its flight. The
    // waiter's body differs only in deadline_ms, which is excluded from
    // the cache key, so both share one canonical key.
    std::thread::sleep(Duration::from_millis(60));
    let started = Instant::now();
    let (status, body) = raw_request(
        addr,
        "POST",
        "/api/v1/explain/sentence-removal",
        Some(&slow_body(r#", "deadline_ms": 40"#)),
    );
    let elapsed = started.elapsed();
    assert_eq!(status, 200, "a tripped budget is not an error: {body}");
    let v = parse(&body).unwrap();
    let status_field = v.get("status").unwrap().as_str().unwrap();
    // Either the leader finished within the waiter's budget (shared
    // payload) or the waiter gave up at its deadline with the canonical
    // partial. It must never block far past its 40ms budget.
    if status_field == "deadline" {
        assert_eq!(v.get("candidates_evaluated").unwrap().as_u64(), Some(0));
    } else {
        assert!(matches!(status_field, "complete" | "exhausted"));
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "waiter blocked {elapsed:?} — far past its 40ms budget"
    );

    let (leader_status, _) = leader.join().unwrap();
    assert_eq!(leader_status, 200);
    handle.stop();
}

// ---------------------------------------------------------------------------
// Byte-parity property: cached server vs uncached server.
// ---------------------------------------------------------------------------

struct StatePair {
    cached: &'static AppState,
    uncached: &'static AppState,
}

/// One cached + one cache-disabled server per retrieval strategy, built
/// once. Cache state deliberately persists across property cases: parity
/// must hold whatever mixture of hits, misses, and coalesced flights a
/// request sequence produces.
fn strategy_states() -> &'static [StatePair; 3] {
    static STATES: OnceLock<[StatePair; 3]> = OnceLock::new();
    STATES.get_or_init(|| {
        [
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::BlockMax,
        ]
        .map(|strategy| {
            let mut config = EngineConfig::fast();
            config.retrieval.strategy = strategy;
            let build = |entries: usize| {
                AppState::leak_full(
                    demo_docs(),
                    config.clone(),
                    RankerChoice::Bm25,
                    JobsConfig::default(),
                    ExplainCacheConfig { entries },
                )
            };
            StatePair {
                cached: build(512),
                uncached: build(0),
            }
        })
    })
}

const ENDPOINTS: [&str; 4] = [
    "/api/v1/explain/sentence-removal",
    "/api/v1/explain/query-augmentation",
    "/api/v1/explain/query-reduction",
    "/api/v1/explain/term-removal",
];
const QUERIES: [&str; 3] = ["covid outbreak", "microchip", "covid"];

/// Decode one generated code point into a request. The space is small
/// (432 distinct requests) so sequences carry duplicates by construction,
/// and duplicates also recur across cases against the same warm cache.
fn decode(code: u32) -> (String, String) {
    let mut c = code as usize;
    let endpoint = ENDPOINTS[c % 4];
    c /= 4;
    let query = QUERIES[c % 3];
    c /= 3;
    let k = 1 + (c % 3);
    c /= 3;
    let doc = c % 6;
    c /= 6;
    let n = 1 + (c % 2);
    let threshold = if endpoint.ends_with("query-augmentation") {
        r#", "threshold": 1"#
    } else {
        ""
    };
    (
        endpoint.to_string(),
        format!(r#"{{"query": "{query}", "k": {k}, "doc": {doc}, "n": {n}{threshold}}}"#),
    )
}

fn post_on(state: &'static AppState, path: &str, body: &str) -> (u16, Vec<u8>) {
    let req = Request {
        method: "POST".into(),
        path: path.into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    (resp.status, resp.body)
}

/// Publish a new generation on both servers of a pair by upserting a
/// uniquely-named filler document, so their corpora stay identical and
/// every prior cache key for the live generation goes stale.
fn publish_on(pair: &StatePair) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    for state in [pair.cached, pair.uncached] {
        let corpus = state.registry().get("default").unwrap();
        let seq = corpus.stage(DeltaOp::Upsert(Document::new(
            &format!("extra-{id}"),
            "Filler",
            "spring regatta filler text with no outbreak terms",
        )));
        assert!(corpus.wait_for_seq(seq, Duration::from_secs(10)));
    }
}

// For random duplicate-bearing request sequences across all four
// explainers and all three retrieval strategies, the cached server's
// response body is byte-identical to the cache-disabled server's —
// including straddling a generation publish, which must invalidate
// by keying rather than by serving stale bytes.
prop! {
    config(cases = 16);
    fn cached_responses_match_uncached_server_byte_for_byte(
        codes in gens::vec_of(gens::u32_range(0..432), 2..8),
        publish_at in gens::u32_range(0..8),
    ) {
        for pair in strategy_states() {
            for (i, &code) in codes.iter().enumerate() {
                if i as u32 == *publish_at {
                    publish_on(pair);
                }
                let (path, body) = decode(code);
                let (cached_status, cached_body) = post_on(pair.cached, &path, &body);
                let (fresh_status, fresh_body) = post_on(pair.uncached, &path, &body);
                prop_assert_eq!(cached_status, fresh_status);
                prop_assert!(
                    cached_body == fresh_body,
                    "byte mismatch for {} {}: cached={:?} fresh={:?}",
                    path,
                    body,
                    String::from_utf8_lossy(&cached_body),
                    String::from_utf8_lossy(&fresh_body)
                );
            }
        }
    }
}
