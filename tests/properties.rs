//! Property-based tests on the system's core invariants.
//!
//! These cover the guarantees the paper's algorithms rely on: minimality
//! ordering of the combination search, validity of every returned
//! counterfactual, permutation behaviour of pool re-ranking, BM25
//! monotonicity, analyzer/JSON round-trips, and LDA count invariants.

use proptest::prelude::*;

use credence_core::{CandidateOrdering, ComboSearch, SearchBudget};
use credence_index::score::{bm25_idf, bm25_term_weight};
use credence_index::vector::{cosine_similarity, SparseVector};
use credence_index::{Bm25Params, CollectionStats, Document, InvertedIndex};
use credence_rank::{rank_corpus, rerank_pool, Bm25Ranker, Ranker};
use credence_text::{porter_stem, split_sentences, tokenize, Analyzer};

// ---------------------------------------------------------------------------
// Combination search (the minimality engine).
// ---------------------------------------------------------------------------

proptest! {
    /// Size-major order: every emitted combination is at least as large as
    /// its predecessor — the paper's minimality guarantee.
    #[test]
    fn combos_are_size_major(scores in prop::collection::vec(0.0f64..100.0, 0..8)) {
        let combos: Vec<_> = ComboSearch::new(
            &scores,
            SearchBudget { max_size: 4, max_candidates: 8, max_evaluations: 5_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        let sizes: Vec<usize> = combos.iter().map(|c| c.items.len()).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    }

    /// Within one size level, scores never increase.
    #[test]
    fn combos_scores_descend_within_level(scores in prop::collection::vec(0.0f64..100.0, 0..8)) {
        let combos: Vec<_> = ComboSearch::new(
            &scores,
            SearchBudget { max_size: 3, max_candidates: 8, max_evaluations: 5_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        for size in 1..=3usize {
            let level: Vec<f64> = combos
                .iter()
                .filter(|c| c.items.len() == size)
                .map(|c| c.score)
                .collect();
            prop_assert!(level.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        }
    }

    /// No duplicates, and every combination's members are distinct.
    #[test]
    fn combos_are_unique_sets(scores in prop::collection::vec(0.0f64..10.0, 0..7)) {
        let combos: Vec<_> = ComboSearch::new(
            &scores,
            SearchBudget { max_size: 7, max_candidates: 7, max_evaluations: 10_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        let mut seen = std::collections::HashSet::new();
        for c in &combos {
            let mut items = c.items.clone();
            items.dedup();
            prop_assert_eq!(items.len(), c.items.len(), "duplicate member");
            prop_assert!(seen.insert(c.items.clone()), "duplicate combination");
        }
        // Completeness: sum over j of C(n, j) combinations.
        let n = scores.len();
        let expected: usize = (1..=n).map(|j| binom(n, j)).sum();
        prop_assert_eq!(combos.len(), expected);
    }
}

fn binom(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut r = 1usize;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

// ---------------------------------------------------------------------------
// BM25 and vectors.
// ---------------------------------------------------------------------------

proptest! {
    /// idf is positive and monotone decreasing in df for any corpus size.
    #[test]
    fn idf_positive_monotone(n in 1usize..100_000, df1 in 0u32..1000, df2 in 0u32..1000) {
        let (lo, hi) = if df1 <= df2 { (df1, df2) } else { (df2, df1) };
        prop_assume!(hi as usize <= n);
        prop_assert!(bm25_idf(n, hi) > 0.0);
        prop_assert!(bm25_idf(n, lo) >= bm25_idf(n, hi));
    }

    /// BM25 term weight is monotone in tf and bounded by (k1+1)·idf.
    #[test]
    fn bm25_monotone_and_bounded(tf1 in 0u32..500, tf2 in 0u32..500, dl in 1u32..1000) {
        let stats = CollectionStats {
            num_docs: 100,
            total_terms: 5000,
            doc_freq: vec![10],
            coll_freq: vec![50],
        };
        let p = Bm25Params::default();
        let (lo, hi) = if tf1 <= tf2 { (tf1, tf2) } else { (tf2, tf1) };
        let w_lo = bm25_term_weight(p, &stats, 0, lo, dl);
        let w_hi = bm25_term_weight(p, &stats, 0, hi, dl);
        prop_assert!(w_lo <= w_hi + 1e-12);
        let bound = (p.k1 + 1.0) * bm25_idf(100, 10);
        prop_assert!(w_hi <= bound + 1e-9);
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_symmetric_bounded(
        a in prop::collection::vec((0u32..50, -10.0f64..10.0), 0..20),
        b in prop::collection::vec((0u32..50, -10.0f64..10.0), 0..20),
    ) {
        let va = SparseVector::from_pairs(a);
        let vb = SparseVector::from_pairs(b);
        let ab = cosine_similarity(&va, &vb);
        let ba = cosine_similarity(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }
}

// ---------------------------------------------------------------------------
// Text pipeline.
// ---------------------------------------------------------------------------

proptest! {
    /// Token offsets always slice the source text to the raw token.
    #[test]
    fn token_offsets_slice_source(text in ".{0,300}") {
        for tok in tokenize(&text) {
            prop_assert_eq!(&text[tok.start..tok.end], tok.raw.as_str());
        }
    }

    /// Sentence spans are ordered, non-overlapping, and within bounds.
    #[test]
    fn sentence_spans_are_ordered(text in "[A-Za-z0-9 .!?\n]{0,400}") {
        let sents = split_sentences(&text);
        let mut prev_end = 0usize;
        for s in &sents {
            prop_assert!(s.start >= prev_end);
            prop_assert!(s.end <= text.len());
            prop_assert!(s.start <= s.end);
            prev_end = s.end;
        }
    }

    /// Analysis is deterministic and stable under repetition.
    #[test]
    fn analysis_is_deterministic(text in ".{0,200}") {
        let a = Analyzer::english();
        prop_assert_eq!(a.analyze(&text), a.analyze(&text));
    }

    /// Stemming lowercase ascii words never panics and never grows a word.
    #[test]
    fn stemming_never_grows(word in "[a-z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }
}

// ---------------------------------------------------------------------------
// JSON round-trip.
// ---------------------------------------------------------------------------

fn arb_json() -> impl Strategy<Value = credence_json::Value> {
    use credence_json::Value;
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1e12f64..1e12).prop_map(Value::Number),
        "[^\\\\\"]{0,20}".prop_map(Value::String),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Object),
        ]
    })
}

proptest! {
    /// parse(to_string(v)) == v for arbitrary JSON trees.
    #[test]
    fn json_round_trip(v in arb_json()) {
        let s = credence_json::to_string(&v);
        let back = credence_json::parse(&s).unwrap();
        // Numbers may lose nothing here (we stay in f64 integral/decimal
        // range), so exact equality is expected.
        prop_assert_eq!(back, v);
    }
}

// ---------------------------------------------------------------------------
// Ranking invariants over generated corpora.
// ---------------------------------------------------------------------------

fn arb_corpus() -> impl Strategy<Value = Vec<Document>> {
    let word = prop_oneof![
        Just("covid"),
        Just("outbreak"),
        Just("vaccine"),
        Just("garden"),
        Just("flowers"),
        Just("tracking"),
        Just("harbor"),
        Just("economy"),
    ];
    let sentence = prop::collection::vec(word, 3..10)
        .prop_map(|ws| format!("{}.", ws.join(" ")));
    let body = prop::collection::vec(sentence, 1..5).prop_map(|ss| ss.join(" "));
    prop::collection::vec(body.prop_map(Document::from_body), 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corpus ranking is sorted by score with deterministic tie-breaks, and
    /// contains no unmatched documents for a lexical ranker.
    #[test]
    fn ranking_is_sorted_and_matched(docs in arb_corpus()) {
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        let entries = ranking.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for &(_, score) in entries {
            prop_assert!(score > 0.0);
        }
    }

    /// Pool re-ranking is always a permutation of the pool with dense ranks,
    /// regardless of the substituted body.
    #[test]
    fn rerank_is_permutation(docs in arb_corpus(), body in "[a-z ]{0,60}") {
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(!ranking.is_empty());
        let pool = ranking.top_k(4.min(ranking.len()));
        let target = pool[0];
        let rows = rerank_pool(&ranker, "covid outbreak", &pool, Some((target, &body)));
        let mut docs_out: Vec<_> = rows.iter().map(|r| r.doc).collect();
        docs_out.sort_unstable();
        let mut expected = pool.clone();
        expected.sort_unstable();
        prop_assert_eq!(docs_out, expected);
        let mut ranks: Vec<_> = rows.iter().map(|r| r.new_rank).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (1..=pool.len()).collect::<Vec<_>>());
    }

    /// Scoring a document's own body ad hoc equals its indexed score —
    /// the contract that makes perturbation scoring meaningful.
    #[test]
    fn adhoc_matches_indexed(docs in arb_corpus()) {
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        for d in idx.doc_ids() {
            let body = idx.document(d).unwrap().body.clone();
            let a = ranker.score_doc("covid outbreak vaccine", d);
            let b = ranker.score_text("covid outbreak vaccine", &body);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// LDA count invariants under arbitrary corpora.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lda_invariants_hold(
        docs in prop::collection::vec(
            prop::collection::vec(0usize..12, 0..30),
            0..10,
        ),
        topics in 1usize..5,
    ) {
        let model = credence_topics::LdaModel::fit(
            &docs,
            12,
            &credence_topics::LdaConfig {
                num_topics: topics,
                iterations: 5,
                ..Default::default()
            },
        );
        prop_assert!(model.check_invariants().is_ok());
        // Distributions are proper.
        for t in 0..topics {
            let s: f64 = (0..12).map(|w| model.phi(t, w)).sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Builder edits.
// ---------------------------------------------------------------------------

proptest! {
    /// Replacing a term with itself (case preserved by token) never changes
    /// the token stream's terms.
    #[test]
    fn self_replacement_preserves_terms(body in "[a-zA-Z .,]{0,120}", term in "[a-z]{1,8}") {
        use credence_core::{apply_edits, Edit};
        let edited = apply_edits(&body, &[Edit::replace(term.clone(), term.clone())]);
        let a: Vec<String> = credence_text::tokenize(&body).into_iter().map(|t| t.term).collect();
        let b: Vec<String> = credence_text::tokenize(&edited).into_iter().map(|t| t.term).collect();
        prop_assert_eq!(a, b);
    }

    /// After removing a term, it never appears in the edited body's tokens.
    #[test]
    fn removal_is_complete(body in "[a-zA-Z .,]{0,120}", term in "[a-z]{1,8}") {
        use credence_core::{apply_edits, Edit};
        let edited = apply_edits(&body, &[Edit::remove(term.clone())]);
        for tok in credence_text::tokenize(&edited) {
            prop_assert_ne!(tok.term, term.clone());
        }
    }

    /// apply_edits with no edits only normalises whitespace (token stream
    /// unchanged).
    #[test]
    fn empty_edits_preserve_tokens(body in ".{0,150}") {
        use credence_core::apply_edits;
        let edited = apply_edits(&body, &[]);
        let a: Vec<String> = credence_text::tokenize(&body).into_iter().map(|t| t.term).collect();
        let b: Vec<String> = credence_text::tokenize(&edited).into_iter().map(|t| t.term).collect();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Index persistence.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load is the identity on every observable of the index.
    #[test]
    fn persistence_round_trips(docs in arb_corpus()) {
        use credence_index::{read_index, write_index};
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let loaded = read_index(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.num_docs(), idx.num_docs());
        prop_assert_eq!(loaded.documents(), idx.documents());
        for (tid, term) in idx.vocabulary().iter() {
            prop_assert_eq!(loaded.vocabulary().id(term), Some(tid));
            prop_assert_eq!(loaded.postings(tid), idx.postings(tid));
        }
        for d in idx.doc_ids() {
            prop_assert_eq!(loaded.doc_len(d), idx.doc_len(d));
            prop_assert_eq!(loaded.doc_terms(d), idx.doc_terms(d));
        }
    }

    /// Loading arbitrary bytes never panics.
    #[test]
    fn loading_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        use credence_index::read_index;
        let _ = read_index(bytes.as_slice());
    }

    /// Loading a valid file with a flipped byte never panics (errors are
    /// fine; structural corruption is detected or tolerated gracefully).
    #[test]
    fn corrupted_index_never_panics(docs in arb_corpus(), pos_seed in any::<u64>(), flip in 1u8..255) {
        use credence_index::{read_index, write_index};
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        if !buf.is_empty() {
            let pos = (pos_seed as usize) % buf.len();
            buf[pos] ^= flip;
            let _ = read_index(buf.as_slice());
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP request parsing.
// ---------------------------------------------------------------------------

proptest! {
    /// The HTTP parser never panics on arbitrary bytes.
    #[test]
    fn http_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = credence_server::http::read_request(bytes.as_slice());
    }

    /// Round trip: a well-formed POST with arbitrary body parses back
    /// exactly.
    #[test]
    fn http_post_round_trips(body in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut raw = format!(
            "POST /rank HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        ).into_bytes();
        raw.extend_from_slice(&body);
        let req = credence_server::http::read_request(raw.as_slice()).unwrap();
        prop_assert_eq!(req.method, "POST");
        prop_assert_eq!(req.body, body);
    }
}

// ---------------------------------------------------------------------------
// Minimality against brute force.
// ---------------------------------------------------------------------------

/// Brute force: smallest subset size of sentence removals that pushes the
/// document past k, or None if none does (within all subsets).
fn brute_force_min_removal(
    ranker: &Bm25Ranker<'_>,
    query: &str,
    k: usize,
    doc: credence_index::DocId,
) -> Option<usize> {
    use credence_text::split_sentences;
    let body = ranker.index().document(doc)?.body.clone();
    let sentences = split_sentences(&body);
    let n = sentences.len();
    let ranking = rank_corpus(ranker, query);
    let pool = ranking.top_k(k + 1);
    let mut best: Option<usize> = None;
    for mask in 1u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if best.is_some_and(|b| size >= b) {
            continue;
        }
        let kept: Vec<&str> = sentences
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) == 0)
            .map(|(_, s)| s.text.as_str())
            .collect();
        let perturbed = kept.join(" ");
        let rows = rerank_pool(ranker, query, &pool, Some((doc, &perturbed)));
        let rank = rows.iter().find(|r| r.substituted).map(|r| r.new_rank);
        if rank.is_some_and(|r| r > k) {
            best = Some(size);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The explainer's first explanation has exactly the brute-force-minimal
    /// size (when both find one) — the paper's minimality claim, verified
    /// against exhaustive search on small documents.
    #[test]
    fn sentence_removal_matches_brute_force_minimum(docs in arb_corpus()) {
        use credence_core::{explain_sentence_removal, SentenceRemovalConfig, SearchBudget};
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let query = "covid outbreak";
        let ranking = rank_corpus(&ranker, query);
        prop_assume!(!ranking.is_empty());
        let k = 2.min(ranking.len());
        let doc = ranking.top_k(k)[k - 1];
        // Keep documents small so brute force is cheap.
        let n_sentences = credence_text::split_sentences(
            &idx.document(doc).unwrap().body,
        ).len();
        prop_assume!(n_sentences <= 6);

        let result = explain_sentence_removal(
            &ranker,
            query,
            k,
            doc,
            &SentenceRemovalConfig {
                n: 1,
                budget: SearchBudget {
                    max_size: 6,
                    max_candidates: 6,
                    max_evaluations: 100_000,
                },
                ..Default::default()
            },
        );
        let found = result
            .ok()
            .and_then(|r| r.explanations.first().map(|e| e.removed.len()));
        let brute = brute_force_min_removal(&ranker, query, k, doc);
        prop_assert_eq!(found, brute, "explainer vs exhaustive search");
    }
}

// ---------------------------------------------------------------------------
// JSON parser robustness.
// ---------------------------------------------------------------------------

proptest! {
    /// The JSON parser never panics on arbitrary input strings.
    #[test]
    fn json_parser_never_panics(input in ".{0,300}") {
        let _ = credence_json::parse(&input);
    }

    /// Valid-prefix mutation: flipping one char of serialised JSON either
    /// fails to parse or parses into *some* valid value — never panics.
    #[test]
    fn json_mutation_never_panics(v in arb_json(), pos_seed in any::<u64>(), c in any::<char>()) {
        let mut s = credence_json::to_string(&v);
        if !s.is_empty() {
            let chars: Vec<char> = s.chars().collect();
            let pos = (pos_seed as usize) % chars.len();
            let mutated: String = chars
                .iter()
                .enumerate()
                .map(|(i, &orig)| if i == pos { c } else { orig })
                .collect();
            s = mutated;
        }
        let _ = credence_json::parse(&s);
    }
}
