//! Property-based tests on the system's core invariants, running on the
//! in-repo `credence_repro::prop` harness (no registry dependencies).
//!
//! These cover the guarantees the paper's algorithms rely on: minimality
//! ordering of the combination search, validity of every returned
//! counterfactual, permutation behaviour of pool re-ranking, BM25
//! monotonicity, analyzer/JSON round-trips, and LDA count invariants.
//!
//! Every property runs on a pinned seed (derived from its name; override
//! with `CREDENCE_PROP_SEED` to replay a failure), so the suite is fully
//! deterministic.

use credence_repro::prop;
use credence_repro::prop::{gens, Gen, GenSet};
use credence_repro::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

use credence_core::{CandidateOrdering, ComboSearch, SearchBudget};
use credence_index::score::{bm25_idf, bm25_term_weight};
use credence_index::vector::{cosine_similarity, SparseVector};
use credence_index::{Bm25Params, CollectionStats, Document, InvertedIndex};
use credence_rank::{rank_corpus, rerank_pool, Bm25Ranker, Ranker};
use credence_rng::rngs::StdRng;
use credence_rng::Rng;
use credence_text::{porter_stem, split_sentences, tokenize, Analyzer};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const SENTENCE_ALPHABET: &str =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 .!?\n";
const BODY_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ .,";

// ---------------------------------------------------------------------------
// The harness itself: the shrinking path must find minimal counterexamples.
// ---------------------------------------------------------------------------

/// Not a system property — a meta-test pinning the harness's shrinking
/// behaviour, so a regression in the shrinker fails loudly here rather than
/// silently degrading every counterexample below.
#[test]
fn harness_shrinks_to_minimal_counterexample() {
    let gens = (gens::vec_of(gens::u32_range(0..100), 0..16),);
    let fails = |v: &Vec<u32>| v.iter().sum::<u32>() >= 90;
    let failure = prop::check(
        "meta_sum_below_90",
        &prop::Config::default(),
        &gens,
        |(v,): &(Vec<u32>,)| {
            if fails(v) {
                prop::TestResult::fail("sum too large")
            } else {
                prop::TestResult::Pass
            }
        },
    )
    .expect("the property is falsifiable");

    let (minimal,) = &failure.minimal;
    let (original,) = &failure.original;
    assert!(fails(minimal), "shrunk case must still fail: {minimal:?}");
    assert!(
        minimal.len() <= original.len() && minimal.iter().sum::<u32>() <= original.iter().sum(),
        "shrinking must not grow the counterexample"
    );
    // Local minimality: every candidate the shrinker proposes passes, so
    // greedy descent genuinely ran to a fixed point (this forces the sum to
    // land exactly on the 90 boundary, since decrementing any element is
    // always among the candidates).
    for cand in gens.shrink(&failure.minimal) {
        assert!(
            !fails(&cand.0),
            "shrink stopped early: {cand:?} still fails"
        );
    }
    assert_eq!(minimal.iter().sum::<u32>(), 90);
}

// ---------------------------------------------------------------------------
// Combination search (the minimality engine).
// ---------------------------------------------------------------------------

prop! {
    /// Size-major order: every emitted combination is at least as large as
    /// its predecessor — the paper's minimality guarantee.
    fn combos_are_size_major(scores in gens::vec_of(gens::f64_range(0.0..100.0), 0..8)) {
        let combos: Vec<_> = ComboSearch::new(
            scores,
            SearchBudget { max_size: 4, max_candidates: 8, max_evaluations: 5_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        let sizes: Vec<usize> = combos.iter().map(|c| c.items.len()).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    }
}

prop! {
    /// Within one size level, scores never increase.
    fn combos_scores_descend_within_level(scores in gens::vec_of(gens::f64_range(0.0..100.0), 0..8)) {
        let combos: Vec<_> = ComboSearch::new(
            scores,
            SearchBudget { max_size: 3, max_candidates: 8, max_evaluations: 5_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        for size in 1..=3usize {
            let level: Vec<f64> = combos
                .iter()
                .filter(|c| c.items.len() == size)
                .map(|c| c.score)
                .collect();
            prop_assert!(level.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        }
    }
}

prop! {
    /// No duplicates, and every combination's members are distinct.
    fn combos_are_unique_sets(scores in gens::vec_of(gens::f64_range(0.0..10.0), 0..7)) {
        let combos: Vec<_> = ComboSearch::new(
            scores,
            SearchBudget { max_size: 7, max_candidates: 7, max_evaluations: 10_000 },
            CandidateOrdering::ImportanceGuided,
        ).collect();
        let mut seen = std::collections::HashSet::new();
        for c in &combos {
            let mut items = c.items.clone();
            items.dedup();
            prop_assert_eq!(items.len(), c.items.len(), "duplicate member");
            prop_assert!(seen.insert(c.items.clone()), "duplicate combination");
        }
        // Completeness: sum over j of C(n, j) combinations.
        let n = scores.len();
        let expected: usize = (1..=n).map(|j| binom(n, j)).sum();
        prop_assert_eq!(combos.len(), expected);
    }
}

fn binom(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut r = 1usize;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

// ---------------------------------------------------------------------------
// BM25 and vectors.
// ---------------------------------------------------------------------------

prop! {
    /// idf is positive and monotone decreasing in df for any corpus size.
    fn idf_positive_monotone(
        n in gens::usize_range(1..100_000),
        df1 in gens::u32_range(0..1000),
        df2 in gens::u32_range(0..1000),
    ) {
        let (n, df1, df2) = (*n, *df1, *df2);
        let (lo, hi) = if df1 <= df2 { (df1, df2) } else { (df2, df1) };
        prop_assume!(hi as usize <= n);
        prop_assert!(bm25_idf(n, hi) > 0.0);
        prop_assert!(bm25_idf(n, lo) >= bm25_idf(n, hi));
    }
}

prop! {
    /// BM25 term weight is monotone in tf and bounded by (k1+1)·idf.
    fn bm25_monotone_and_bounded(
        tf1 in gens::u32_range(0..500),
        tf2 in gens::u32_range(0..500),
        dl in gens::u32_range(1..1000),
    ) {
        let (tf1, tf2, dl) = (*tf1, *tf2, *dl);
        let stats = CollectionStats {
            num_docs: 100,
            total_terms: 5000,
            doc_freq: vec![10],
            coll_freq: vec![50],
        };
        let p = Bm25Params::default();
        let (lo, hi) = if tf1 <= tf2 { (tf1, tf2) } else { (tf2, tf1) };
        let w_lo = bm25_term_weight(p, &stats, 0, lo, dl);
        let w_hi = bm25_term_weight(p, &stats, 0, hi, dl);
        prop_assert!(w_lo <= w_hi + 1e-12);
        let bound = (p.k1 + 1.0) * bm25_idf(100, 10);
        prop_assert!(w_hi <= bound + 1e-9);
    }
}

prop! {
    /// Cosine similarity is symmetric and bounded.
    fn cosine_symmetric_bounded(
        a in gens::vec_of(gens::pair(gens::u32_range(0..50), gens::f64_range(-10.0..10.0)), 0..20),
        b in gens::vec_of(gens::pair(gens::u32_range(0..50), gens::f64_range(-10.0..10.0)), 0..20),
    ) {
        let va = SparseVector::from_pairs(a.clone());
        let vb = SparseVector::from_pairs(b.clone());
        let ab = cosine_similarity(&va, &vb);
        let ba = cosine_similarity(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }
}

// ---------------------------------------------------------------------------
// Text pipeline.
// ---------------------------------------------------------------------------

prop! {
    /// Token offsets always slice the source text to the raw token.
    fn token_offsets_slice_source(text in gens::any_string(0..301)) {
        for tok in tokenize(text) {
            prop_assert_eq!(&text[tok.start..tok.end], tok.raw.as_str());
        }
    }
}

prop! {
    /// Sentence spans are ordered, non-overlapping, and within bounds.
    fn sentence_spans_are_ordered(text in gens::string_of(SENTENCE_ALPHABET, 0..401)) {
        let sents = split_sentences(text);
        let mut prev_end = 0usize;
        for s in &sents {
            prop_assert!(s.start >= prev_end);
            prop_assert!(s.end <= text.len());
            prop_assert!(s.start <= s.end);
            prev_end = s.end;
        }
    }
}

prop! {
    /// Analysis is deterministic and stable under repetition.
    fn analysis_is_deterministic(text in gens::any_string(0..201)) {
        let a = Analyzer::english();
        prop_assert_eq!(a.analyze(text), a.analyze(text));
    }
}

prop! {
    /// Stemming lowercase ascii words never panics and never grows a word.
    fn stemming_never_grows(word in gens::string_of(LOWER, 1..21)) {
        let stem = porter_stem(word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }
}

// ---------------------------------------------------------------------------
// JSON round-trip.
// ---------------------------------------------------------------------------

/// Arbitrary JSON trees (depth ≤ 3, fanout ≤ 4), with a structural
/// shrinker: any node simplifies toward `Null`, containers also shed
/// children one at a time.
fn arb_json() -> Gen<credence_json::Value> {
    Gen::with_shrink(|rng| gen_json(rng, 3), shrink_json)
}

fn gen_json(rng: &mut StdRng, depth: usize) -> credence_json::Value {
    use credence_json::Value;
    // Match the original strategy: strings avoid backslash and quote so
    // escaping itself is exercised by the dedicated parser properties.
    const STR_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyz0123456789 _-+./:{}[]";
    let max_variant = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..max_variant) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Number(rng.gen_range(-1e12..1e12)),
        3 => {
            let n = rng.gen_range(0..21);
            let chars: Vec<char> = STR_ALPHABET.chars().collect();
            Value::String(
                (0..n)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect(),
            )
        }
        4 => {
            let n = rng.gen_range(0..4);
            Value::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4);
            Value::Object(
                (0..n)
                    .map(|_| {
                        let klen = rng.gen_range(1..7);
                        let key: String = (0..klen)
                            .map(|_| {
                                let lower: Vec<char> = LOWER.chars().collect();
                                lower[rng.gen_range(0..lower.len())]
                            })
                            .collect();
                        (key, gen_json(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

fn shrink_json(v: &credence_json::Value) -> Vec<credence_json::Value> {
    use credence_json::Value;
    let mut out = Vec::new();
    match v {
        Value::Null => {}
        Value::Bool(true) => out.push(Value::Bool(false)),
        Value::Bool(false) => out.push(Value::Null),
        Value::Number(n) => {
            out.push(Value::Null);
            if *n != 0.0 {
                out.push(Value::Number(0.0));
                out.push(Value::Number((*n / 2.0).trunc()));
            }
        }
        Value::String(s) => {
            out.push(Value::Null);
            if !s.is_empty() {
                out.push(Value::String(String::new()));
                out.push(Value::String(s[..s.len() / 2].to_string()));
            }
        }
        Value::Array(items) => {
            out.push(Value::Null);
            for i in 0..items.len() {
                let mut smaller = items.clone();
                smaller.remove(i);
                out.push(Value::Array(smaller));
            }
            for (i, item) in items.iter().enumerate().take(4) {
                for shrunk in shrink_json(item) {
                    let mut next = items.clone();
                    next[i] = shrunk;
                    out.push(Value::Array(next));
                }
            }
        }
        Value::Object(map) => {
            out.push(Value::Null);
            for key in map.keys() {
                let mut smaller = map.clone();
                smaller.remove(key);
                out.push(Value::Object(smaller));
            }
            for (key, child) in map.iter().take(4) {
                for shrunk in shrink_json(child) {
                    let mut next = map.clone();
                    next.insert(key.clone(), shrunk);
                    out.push(Value::Object(next));
                }
            }
        }
    }
    out
}

prop! {
    /// parse(to_string(v)) == v for arbitrary JSON trees.
    fn json_round_trip(v in arb_json()) {
        let s = credence_json::to_string(v);
        let back = credence_json::parse(&s).unwrap();
        // Numbers lose nothing here (we stay in f64 integral/decimal
        // range), so exact equality is expected.
        prop_assert_eq!(&back, v);
    }
}

// ---------------------------------------------------------------------------
// Ranking invariants over generated corpora.
// ---------------------------------------------------------------------------

fn arb_corpus() -> Gen<Vec<Document>> {
    let word = gens::one_of(vec![
        gens::just("covid"),
        gens::just("outbreak"),
        gens::just("vaccine"),
        gens::just("garden"),
        gens::just("flowers"),
        gens::just("tracking"),
        gens::just("harbor"),
        gens::just("economy"),
    ]);
    let sentence = gens::vec_of(word, 3..10).map(|ws| format!("{}.", ws.join(" ")));
    let body = gens::vec_of(sentence, 1..5).map(|ss| ss.join(" "));
    gens::vec_of(body.map(Document::from_body), 2..10)
}

prop! {
    /// Corpus ranking is sorted by score with deterministic tie-breaks, and
    /// contains no unmatched documents for a lexical ranker.
    config(cases = 64);
    fn ranking_is_sorted_and_matched(docs in arb_corpus()) {
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        let entries = ranking.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for &(_, score) in entries {
            prop_assert!(score > 0.0);
        }
    }
}

prop! {
    /// Pool re-ranking is always a permutation of the pool with dense ranks,
    /// regardless of the substituted body.
    config(cases = 64);
    fn rerank_is_permutation(docs in arb_corpus(), body in gens::string_of("abcdefghijklmnopqrstuvwxyz ", 0..61)) {
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(!ranking.is_empty());
        let pool = ranking.top_k(4.min(ranking.len()));
        let target = pool[0];
        let rows = rerank_pool(&ranker, "covid outbreak", &pool, Some((target, body.as_str())));
        let mut docs_out: Vec<_> = rows.iter().map(|r| r.doc).collect();
        docs_out.sort_unstable();
        let mut expected = pool.clone();
        expected.sort_unstable();
        prop_assert_eq!(docs_out, expected);
        let mut ranks: Vec<_> = rows.iter().map(|r| r.new_rank).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (1..=pool.len()).collect::<Vec<_>>());
    }
}

prop! {
    /// Scoring a document's own body ad hoc equals its indexed score —
    /// the contract that makes perturbation scoring meaningful.
    config(cases = 64);
    fn adhoc_matches_indexed(docs in arb_corpus()) {
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        for d in idx.doc_ids() {
            let body = idx.document(d).unwrap().body.clone();
            let a = ranker.score_doc("covid outbreak vaccine", d);
            let b = ranker.score_text("covid outbreak vaccine", &body);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// LDA count invariants under arbitrary corpora.
// ---------------------------------------------------------------------------

prop! {
    config(cases = 16);
    fn lda_invariants_hold(
        docs in gens::vec_of(gens::vec_of(gens::usize_range(0..12), 0..30), 0..10),
        topics in gens::usize_range(1..5),
    ) {
        let topics = *topics;
        let model = credence_topics::LdaModel::fit(
            docs,
            12,
            &credence_topics::LdaConfig {
                num_topics: topics,
                iterations: 5,
                ..Default::default()
            },
        );
        prop_assert!(model.check_invariants().is_ok());
        // Distributions are proper.
        for t in 0..topics {
            let s: f64 = (0..12).map(|w| model.phi(t, w)).sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Builder edits.
// ---------------------------------------------------------------------------

prop! {
    /// Replacing a term with itself (case preserved by token) never changes
    /// the token stream's terms.
    fn self_replacement_preserves_terms(
        body in gens::string_of(BODY_ALPHABET, 0..121),
        term in gens::string_of(LOWER, 1..9),
    ) {
        use credence_core::{apply_edits, Edit};
        let edited = apply_edits(body, &[Edit::replace(term.clone(), term.clone())]);
        let a: Vec<String> = credence_text::tokenize(body).into_iter().map(|t| t.term).collect();
        let b: Vec<String> = credence_text::tokenize(&edited).into_iter().map(|t| t.term).collect();
        prop_assert_eq!(a, b);
    }
}

prop! {
    /// After removing a term, it never appears in the edited body's tokens.
    fn removal_is_complete(
        body in gens::string_of(BODY_ALPHABET, 0..121),
        term in gens::string_of(LOWER, 1..9),
    ) {
        use credence_core::{apply_edits, Edit};
        let edited = apply_edits(body, &[Edit::remove(term.clone())]);
        for tok in credence_text::tokenize(&edited) {
            prop_assert_ne!(&tok.term, term);
        }
    }
}

prop! {
    /// apply_edits with no edits only normalises whitespace (token stream
    /// unchanged).
    fn empty_edits_preserve_tokens(body in gens::any_string(0..151)) {
        use credence_core::apply_edits;
        let edited = apply_edits(body, &[]);
        let a: Vec<String> = credence_text::tokenize(body).into_iter().map(|t| t.term).collect();
        let b: Vec<String> = credence_text::tokenize(&edited).into_iter().map(|t| t.term).collect();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Index persistence.
// ---------------------------------------------------------------------------

prop! {
    /// save → load is the identity on every observable of the index.
    config(cases = 32);
    fn persistence_round_trips(docs in arb_corpus()) {
        use credence_index::{read_index, write_index};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let loaded = read_index(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.num_docs(), idx.num_docs());
        prop_assert_eq!(loaded.documents(), idx.documents());
        for (tid, term) in idx.vocabulary().iter() {
            prop_assert_eq!(loaded.vocabulary().id(term), Some(tid));
            prop_assert_eq!(loaded.postings(tid), idx.postings(tid));
        }
        for d in idx.doc_ids() {
            prop_assert_eq!(loaded.doc_len(d), idx.doc_len(d));
            prop_assert_eq!(loaded.doc_terms(d), idx.doc_terms(d));
        }
    }
}

prop! {
    /// Loading arbitrary bytes never panics.
    config(cases = 32);
    fn loading_garbage_never_panics(bytes in gens::vec_of(gens::u8_any(), 0..200)) {
        use credence_index::read_index;
        let _ = read_index(bytes.as_slice());
    }
}

prop! {
    /// Loading a valid file with a flipped byte never panics (errors are
    /// fine; structural corruption is detected or tolerated gracefully).
    config(cases = 32);
    fn corrupted_index_never_panics(
        docs in arb_corpus(),
        pos_seed in gens::u64_any(),
        flip in gens::u8_range(1..255),
    ) {
        use credence_index::{read_index, write_index};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        if !buf.is_empty() {
            let pos = (*pos_seed as usize) % buf.len();
            buf[pos] ^= *flip;
            let _ = read_index(buf.as_slice());
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP request parsing.
// ---------------------------------------------------------------------------

prop! {
    /// The HTTP parser never panics on arbitrary bytes.
    fn http_parser_never_panics(bytes in gens::vec_of(gens::u8_any(), 0..300)) {
        let _ = credence_server::http::read_request(bytes.as_slice());
    }
}

prop! {
    /// Round trip: a well-formed POST with arbitrary body parses back
    /// exactly.
    fn http_post_round_trips(body in gens::vec_of(gens::u8_any(), 0..200)) {
        let mut raw = format!(
            "POST /rank HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        ).into_bytes();
        raw.extend_from_slice(body);
        let req = credence_server::http::read_request(raw.as_slice()).unwrap();
        prop_assert_eq!(&req.method, "POST");
        prop_assert_eq!(&req.body, body);
    }
}

// ---------------------------------------------------------------------------
// Minimality against brute force.
// ---------------------------------------------------------------------------

/// Brute force: smallest subset size of sentence removals that pushes the
/// document past k, or None if none does (within all subsets).
fn brute_force_min_removal(
    ranker: &Bm25Ranker<'_>,
    query: &str,
    k: usize,
    doc: credence_index::DocId,
) -> Option<usize> {
    let body = ranker.index().document(doc)?.body.clone();
    let sentences = split_sentences(&body);
    let n = sentences.len();
    let ranking = rank_corpus(ranker, query);
    let pool = ranking.top_k(k + 1);
    let mut best: Option<usize> = None;
    for mask in 1u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if best.is_some_and(|b| size >= b) {
            continue;
        }
        let kept: Vec<&str> = sentences
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) == 0)
            .map(|(_, s)| s.text.as_str())
            .collect();
        let perturbed = kept.join(" ");
        let rows = rerank_pool(ranker, query, &pool, Some((doc, &perturbed)));
        let rank = rows.iter().find(|r| r.substituted).map(|r| r.new_rank);
        if rank.is_some_and(|r| r > k) {
            best = Some(size);
        }
    }
    best
}

prop! {
    /// The explainer's first explanation has exactly the brute-force-minimal
    /// size (when both find one) — the paper's minimality claim, verified
    /// against exhaustive search on small documents.
    config(cases = 24);
    fn sentence_removal_matches_brute_force_minimum(docs in arb_corpus()) {
        use credence_core::{explain_sentence_removal, SentenceRemovalConfig, SearchBudget};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let query = "covid outbreak";
        let ranking = rank_corpus(&ranker, query);
        prop_assume!(!ranking.is_empty());
        let k = 2.min(ranking.len());
        let doc = ranking.top_k(k)[k - 1];
        // Keep documents small so brute force is cheap.
        let n_sentences = split_sentences(
            &idx.document(doc).unwrap().body,
        ).len();
        prop_assume!(n_sentences <= 6);

        let result = explain_sentence_removal(
            &ranker,
            query,
            k,
            doc,
            &SentenceRemovalConfig {
                n: 1,
                budget: SearchBudget {
                    max_size: 6,
                    max_candidates: 6,
                    max_evaluations: 100_000,
                },
                ..Default::default()
            },
        );
        let found = result
            .ok()
            .and_then(|r| r.explanations.first().map(|e| e.removed.len()));
        let brute = brute_force_min_removal(&ranker, query, k, doc);
        prop_assert_eq!(found, brute, "explainer vs exhaustive search: {found:?} vs {brute:?}");
    }
}

// ---------------------------------------------------------------------------
// JSON parser robustness.
// ---------------------------------------------------------------------------

prop! {
    /// The JSON parser never panics on arbitrary input strings.
    fn json_parser_never_panics(input in gens::any_string(0..301)) {
        let _ = credence_json::parse(input);
    }
}

prop! {
    /// Valid-prefix mutation: flipping one char of serialised JSON either
    /// fails to parse or parses into *some* valid value — never panics.
    fn json_mutation_never_panics(
        v in arb_json(),
        pos_seed in gens::u64_any(),
        c in gens::char_any(),
    ) {
        let mut s = credence_json::to_string(v);
        if !s.is_empty() {
            let chars: Vec<char> = s.chars().collect();
            let pos = (*pos_seed as usize) % chars.len();
            let mutated: String = chars
                .iter()
                .enumerate()
                .map(|(i, &orig)| if i == pos { *c } else { orig })
                .collect();
            s = mutated;
        }
        let _ = credence_json::parse(&s);
    }
}

// ---------------------------------------------------------------------------
// Candidate-evaluation engine parity: the incremental scorers and the
// multi-threaded level evaluation must be bit-for-bit identical to the
// exact serial reference path on every explainer. `parallel_threshold: 1`
// forces the threaded path even on the small generated corpora, and the
// results derive `PartialEq` over their `f64` scores, so equality here is
// exact float equality, not tolerance.
// ---------------------------------------------------------------------------

/// A forced-parallel, incremental configuration for the parity properties.
fn parity_eval(threads: usize) -> credence_core::EvalOptions {
    credence_core::EvalOptions {
        threads,
        parallel_threshold: 1,
        force_exact: false,
    }
}

prop! {
    /// Sentence removal: parallel + delta scoring equals exact serial.
    config(cases = 24);
    fn sentence_removal_engine_parity(
        docs in arb_corpus(),
        n in gens::usize_range(1..4),
        threads in gens::usize_range(2..5),
    ) {
        use credence_core::{explain_sentence_removal, EvalOptions, SentenceRemovalConfig};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(!ranking.is_empty());
        let doc = ranking.entries()[0].0;
        let k = 1.max(ranking.len() / 2);
        let mk = |eval| SentenceRemovalConfig { n: *n, eval, ..Default::default() };
        let serial = explain_sentence_removal(&ranker, "covid outbreak", k, doc, &mk(EvalOptions::exact_serial()));
        let engine = explain_sentence_removal(&ranker, "covid outbreak", k, doc, &mk(parity_eval(*threads)));
        prop_assert_eq!(serial, engine);
    }
}

prop! {
    /// Budget-limited search is prefix-consistent: capping the evaluation
    /// count returns exactly the uncapped run's best-so-far — the
    /// explanations discovered within the first `candidates_evaluated`
    /// evaluations, in the same order — never a different search path.
    config(cases = 24);
    fn budgeted_search_is_a_prefix_of_the_full_search(
        docs in arb_corpus(),
        cap_seed in gens::usize_range(1..64),
    ) {
        use credence_core::{explain_sentence_removal, Budget, SearchStatus, SentenceRemovalConfig};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(!ranking.is_empty());
        let doc = ranking.entries()[0].0;
        let k = 1.max(ranking.len() / 2);
        let mk = |lifecycle| SentenceRemovalConfig { n: 8, lifecycle, ..Default::default() };

        let full = explain_sentence_removal(&ranker, "covid outbreak", k, doc, &mk(Budget::unlimited()));
        prop_assume!(full.is_ok());
        let full = full.unwrap();
        prop_assert_eq!(full.status, SearchStatus::Complete);

        let cap = 1 + (*cap_seed % (full.candidates_evaluated + 1));
        let capped = explain_sentence_removal(
            &ranker, "covid outbreak", k, doc, &mk(Budget::unlimited().with_max_evals(cap)),
        ).unwrap();

        // The cap is a hard ceiling, honoured at batch granularity.
        prop_assert!(capped.candidates_evaluated <= cap);
        prop_assert!(capped.candidates_evaluated <= full.candidates_evaluated);
        if capped.status == SearchStatus::Complete {
            prop_assert_eq!(&capped, &full);
        } else {
            prop_assert_eq!(capped.status, SearchStatus::Exhausted);
            // Same best-so-far as the full run truncated at the capped
            // run's evaluation count: exact equality, element by element.
            let prefix: Vec<_> = full
                .explanations
                .iter()
                .filter(|e| e.candidates_evaluated <= capped.candidates_evaluated)
                .cloned()
                .collect();
            prop_assert_eq!(capped.explanations, prefix);
        }
    }
}

prop! {
    /// Query augmentation: parallel + posting-list scoring equals exact serial.
    config(cases = 24);
    fn query_augmentation_engine_parity(
        docs in arb_corpus(),
        n in gens::usize_range(1..4),
        threads in gens::usize_range(2..5),
    ) {
        use credence_core::{explain_query_augmentation, EvalOptions, QueryAugmentationConfig};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(ranking.len() >= 2);
        // The last-ranked document: ranked, and strictly below threshold 1.
        let doc = ranking.entries()[ranking.len() - 1].0;
        let mk = |eval| QueryAugmentationConfig { n: *n, threshold: 1, eval, ..Default::default() };
        let serial = explain_query_augmentation(&ranker, "covid outbreak", 1, doc, &mk(EvalOptions::exact_serial()));
        let engine = explain_query_augmentation(&ranker, "covid outbreak", 1, doc, &mk(parity_eval(*threads)));
        prop_assert_eq!(serial, engine);
    }
}

prop! {
    /// Query reduction: parallel + subset scoring equals exact serial.
    config(cases = 24);
    fn query_reduction_engine_parity(
        docs in arb_corpus(),
        n in gens::usize_range(1..4),
        threads in gens::usize_range(2..5),
    ) {
        use credence_core::{explain_query_reduction, EvalOptions, QueryReductionConfig};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let query = "covid outbreak vaccine";
        let ranking = rank_corpus(&ranker, query);
        prop_assume!(!ranking.is_empty());
        let doc = ranking.entries()[0].0;
        let mk = |eval| QueryReductionConfig { n: *n, eval, ..Default::default() };
        let serial = explain_query_reduction(&ranker, query, 1, doc, &mk(EvalOptions::exact_serial()));
        let engine = explain_query_reduction(&ranker, query, 1, doc, &mk(parity_eval(*threads)));
        prop_assert_eq!(serial, engine);
    }
}

// ---------------------------------------------------------------------------
// Pruned top-k retrieval parity: MaxScore pruning and the sharded parallel
// fallback must return *bit-identical* `(doc, score)` lists to the
// exhaustive scan — scores compared via `to_bits`, not tolerance — across
// random corpora, queries with duplicate and absent terms, and every k
// regime (k = 0, partial, k ≥ corpus, ties from duplicate documents).
// ---------------------------------------------------------------------------

/// Queries over the corpus vocabulary plus a term that never occurs;
/// repeated draws produce duplicate terms.
fn arb_query() -> Gen<String> {
    let word = gens::one_of(vec![
        gens::just("covid"),
        gens::just("outbreak"),
        gens::just("vaccine"),
        gens::just("garden"),
        gens::just("tracking"),
        gens::just("economy"),
        gens::just("absentterm"),
    ]);
    gens::vec_of(word, 1..7).map(|ws| ws.join(" "))
}

prop! {
    /// Every pruned/sharded strategy and shard count returns the exhaustive
    /// scan's exact hits.
    config(cases = 64);
    fn pruned_topk_is_bit_identical_to_exhaustive(
        docs in arb_corpus(),
        query in arb_query(),
        k in gens::usize_range(0..13),
    ) {
        use credence_index::{
            search_top_k_exhaustive, search_top_k_with, SearchStrategy, TopKOptions,
        };
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let q = idx.analyze_query(query);
        let (reference, _) = search_top_k_exhaustive(&idx, Bm25Params::default(), &q, *k);
        let ref_bits: Vec<(u32, u64)> =
            reference.iter().map(|h| (h.doc.0, h.score.to_bits())).collect();
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::Pruned,
            SearchStrategy::BlockMax,
            SearchStrategy::Sharded,
        ] {
            for shards in [0usize, 1, 3] {
                let opts = TopKOptions { strategy, shards, ..TopKOptions::default() };
                let (hits, _) = search_top_k_with(&idx, Bm25Params::default(), &q, *k, &opts);
                let bits: Vec<(u32, u64)> =
                    hits.iter().map(|h| (h.doc.0, h.score.to_bits())).collect();
                prop_assert_eq!(&bits, &ref_bits, "strategy {strategy:?}, shards {shards}");
            }
        }
    }
}

prop! {
    /// The engine-facing path: `rank_corpus_with` equals `rank_corpus`
    /// bit-for-bit for the hooked rankers (BM25, and RM3's weighted-query
    /// retrieval) under every strategy.
    config(cases = 32);
    fn rank_corpus_with_matches_reference(docs in arb_corpus(), query in arb_query()) {
        use credence_index::{SearchStrategy, TopKOptions};
        use credence_rank::{rank_corpus_with, Rm3Config, Rm3Ranker};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let bm25 = Bm25Ranker::new(&idx, Bm25Params::default());
        let rm3 = Rm3Ranker::new(
            &idx,
            Rm3Config { fb_docs: 3, fb_terms: 4, ..Default::default() },
        );
        let rankers: [&dyn Ranker; 2] = [&bm25, &rm3];
        for ranker in rankers {
            let reference = rank_corpus(ranker, query);
            for strategy in [
                SearchStrategy::Auto,
                SearchStrategy::Exhaustive,
                SearchStrategy::Pruned,
                SearchStrategy::BlockMax,
                SearchStrategy::Sharded,
            ] {
                let opts = TopKOptions { strategy, ..TopKOptions::default() };
                let (list, _) = rank_corpus_with(ranker, query, &opts, 2);
                prop_assert_eq!(
                    list.entries().len(),
                    reference.entries().len(),
                    "{} under {strategy:?}",
                    ranker.name()
                );
                for (a, b) in list.entries().iter().zip(reference.entries()) {
                    prop_assert_eq!(a.0, b.0, "{} under {strategy:?}", ranker.name());
                    prop_assert_eq!(a.1.to_bits(), b.1.to_bits(), "{} under {strategy:?}", ranker.name());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Block-compressed postings: the compressed representation must be a lossless
// re-encoding of the raw posting lists at *every* block size — including
// sizes of 1 (every posting its own block) and sizes that leave a final
// partial block — and the per-block metadata must describe its contents
// exactly, since Block-Max-WAND's skipping correctness rests on it.
// ---------------------------------------------------------------------------

prop! {
    /// compress → decode is the identity on every term's postings for any
    /// block size, and block metadata (first/last doc, count, max tf) is
    /// exact.
    config(cases = 48);
    fn block_compression_round_trips(
        docs in arb_corpus(),
        block_size in gens::usize_range(1..6),
    ) {
        let reference = InvertedIndex::build(docs.clone(), Analyzer::english());
        let idx = InvertedIndex::build_with_block_size(
            docs.clone(),
            Analyzer::english(),
            *block_size,
        );
        for (tid, _) in reference.vocabulary().iter() {
            let raw = reference.postings(tid);
            prop_assert_eq!(idx.postings(tid), raw, "materialised view, term {tid}");
            let list = idx.compressed_postings(tid).unwrap();
            prop_assert_eq!(list.len(), raw.len());
            let decoded = list.decode_all();
            prop_assert_eq!(decoded.as_slice(), raw);
            let mut docs_buf = Vec::new();
            let mut tfs_buf = Vec::new();
            let mut offset = 0usize;
            for (b, meta) in list.blocks().iter().enumerate() {
                let chunk = &raw[offset..offset + meta.count as usize];
                prop_assert_eq!(meta.start as usize, offset);
                prop_assert_eq!(meta.first_doc, chunk[0].doc.0);
                prop_assert_eq!(meta.last_doc, chunk[chunk.len() - 1].doc.0);
                prop_assert_eq!(meta.max_tf, chunk.iter().map(|p| p.tf).max().unwrap());
                list.decode_block(b, &mut docs_buf, &mut tfs_buf);
                let got: Vec<(u32, u32)> =
                    docs_buf.iter().copied().zip(tfs_buf.iter().copied()).collect();
                let want: Vec<(u32, u32)> =
                    chunk.iter().map(|p| (p.doc.0, p.tf)).collect();
                prop_assert_eq!(got, want, "block {b} of term {tid}");
                offset += meta.count as usize;
            }
            prop_assert_eq!(offset, raw.len(), "blocks must cover the whole list");
        }
    }
}

prop! {
    /// Retrieval parity is independent of block size: a non-default block
    /// size changes skip granularity, never the `(doc, score)` bits.
    config(cases = 32);
    fn block_size_never_changes_retrieval(
        docs in arb_corpus(),
        query in arb_query(),
        k in gens::usize_range(0..13),
        block_size in gens::usize_range(1..6),
    ) {
        use credence_index::{
            search_top_k_exhaustive, search_top_k_with, SearchStrategy, TopKOptions,
        };
        let idx = InvertedIndex::build_with_block_size(
            docs.clone(),
            Analyzer::english(),
            *block_size,
        );
        let q = idx.analyze_query(query);
        let (reference, _) = search_top_k_exhaustive(&idx, Bm25Params::default(), &q, *k);
        let opts = TopKOptions {
            strategy: SearchStrategy::BlockMax,
            ..TopKOptions::default()
        };
        let (hits, _) = search_top_k_with(&idx, Bm25Params::default(), &q, *k, &opts);
        let bits = |hs: &[credence_index::SearchHit]| -> Vec<(u32, u64)> {
            hs.iter().map(|h| (h.doc.0, h.score.to_bits())).collect()
        };
        prop_assert_eq!(bits(&hits), bits(&reference), "block size {block_size}");
    }
}

/// Block-boundary regression: document frequencies exactly at, one below,
/// and one above the default block size, so the final block is full,
/// one-short, and a singleton respectively. Ties everywhere (duplicate
/// bodies), so the tie-break order crosses the block boundary too.
#[test]
fn default_block_boundary_dfs_are_bit_identical() {
    use credence_index::{
        search_top_k_exhaustive, search_top_k_with, SearchStrategy, TopKOptions, DEFAULT_BLOCK_SIZE,
    };
    for df in [
        DEFAULT_BLOCK_SIZE - 1,
        DEFAULT_BLOCK_SIZE,
        DEFAULT_BLOCK_SIZE + 1,
    ] {
        let mut docs: Vec<Document> = (0..df)
            .map(|i| {
                // Varying tf (1..=3) so bit widths differ between blocks.
                let covid = "covid ".repeat(i % 3 + 1);
                Document::from_body(format!("{covid}outbreak report"))
            })
            .collect();
        docs.push(Document::from_body("garden fair tonight".to_string()));
        let idx = InvertedIndex::build(docs, Analyzer::english());
        let q = idx.analyze_query("covid outbreak");
        for k in [1usize, 5, DEFAULT_BLOCK_SIZE, DEFAULT_BLOCK_SIZE + 2] {
            let (reference, _) = search_top_k_exhaustive(&idx, Bm25Params::default(), &q, k);
            for strategy in [SearchStrategy::BlockMax, SearchStrategy::Sharded] {
                let opts = TopKOptions {
                    strategy,
                    ..TopKOptions::default()
                };
                let (hits, _) = search_top_k_with(&idx, Bm25Params::default(), &q, k, &opts);
                assert_eq!(hits.len(), reference.len(), "df {df}, k {k}, {strategy:?}");
                for (h, r) in hits.iter().zip(&reference) {
                    assert_eq!(h.doc, r.doc, "df {df}, k {k}, {strategy:?}");
                    assert_eq!(
                        h.score.to_bits(),
                        r.score.to_bits(),
                        "df {df}, k {k}, {strategy:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quantised nearest-neighbour search: the i8 shortlist + exact-rescore path
// must return the plain exact scan's neighbours bit-for-bit (item order and
// f32 similarity bits), for any vectors — including zero vectors, duplicate
// vectors (ties), and extreme scales.
// ---------------------------------------------------------------------------

prop! {
    /// Shortlist-then-rescore equals the exact scan on arbitrary vector sets.
    config(cases = 48);
    fn quantized_nn_matches_exact_scan(
        rows in gens::vec_of(gens::vec_of(gens::f64_range(-3.0..3.0), 8..9), 1..25),
        query in gens::vec_of(gens::f64_range(-3.0..3.0), 8..9),
        n in gens::usize_range(1..30),
        scale_seed in gens::u64_any(),
    ) {
        use credence_embed::{nearest_neighbors, nearest_neighbors_quantized, QuantizedVectors};
        // Exercise wildly different per-vector scales (the per-vector i8
        // scale factor is the whole point) plus exact zero vectors.
        let rows: Vec<Vec<f32>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let s = match (*scale_seed >> (i % 32)) & 3 {
                    0 => 0.0f32,
                    1 => 1e-4,
                    2 => 1.0,
                    _ => 250.0,
                };
                r.iter().map(|&x| x as f32 * s).collect()
            })
            .collect();
        let query: Vec<f32> = query.iter().map(|&x| x as f32).collect();
        let quant = QuantizedVectors::build(rows.len(), 8, |i| rows[i].as_slice());
        let exact = nearest_neighbors(
            &query,
            rows.iter().enumerate().map(|(i, r)| (i, r.as_slice())),
            *n,
        );
        let fast = nearest_neighbors_quantized(
            &query,
            &quant,
            |i| rows[i].as_slice(),
            0..rows.len(),
            *n,
        );
        prop_assert_eq!(fast.len(), exact.len());
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert_eq!(f.item, e.item);
            prop_assert_eq!(f.similarity.to_bits(), e.similarity.to_bits());
        }
    }
}

prop! {
    /// Term removal: parallel + pool scoring equals exact serial.
    config(cases = 24);
    fn term_removal_engine_parity(
        docs in arb_corpus(),
        n in gens::usize_range(1..4),
        threads in gens::usize_range(2..5),
    ) {
        use credence_core::{explain_term_removal, EvalOptions, TermRemovalConfig};
        let idx = InvertedIndex::build(docs.clone(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        prop_assume!(!ranking.is_empty());
        let doc = ranking.entries()[0].0;
        let mk = |eval| TermRemovalConfig { n: *n, eval, ..Default::default() };
        let serial = explain_term_removal(&ranker, "covid outbreak", 1, doc, &mk(EvalOptions::exact_serial()));
        let engine = explain_term_removal(&ranker, "covid outbreak", 1, doc, &mk(parity_eval(*threads)));
        prop_assert_eq!(serial, engine);
    }
}

// ---------------------------------------------------------------------------
// Async job subsystem: the job path is the synchronous path, verbatim.
// ---------------------------------------------------------------------------

/// One engine state shared by every job-parity case (index construction is
/// the expensive part; the property varies the request, not the corpus).
fn job_state() -> &'static credence_server::AppState {
    use std::sync::OnceLock;
    static STATE: OnceLock<&'static credence_server::AppState> = OnceLock::new();
    STATE.get_or_init(|| {
        let docs = vec![
            Document::new("a", "A", "covid outbreak covid outbreak tonight"),
            Document::new(
                "b",
                "B",
                "The covid outbreak arrived quietly. Officials downplayed the covid \
                 outbreak for weeks. Hospitals prepared extra capacity regardless.",
            ),
            Document::new("c", "C", "vaccine research accelerates during the outbreak"),
            Document::new("d", "D", "garden fair draws a record crowd"),
        ];
        credence_server::AppState::leak_jobs(
            docs,
            credence_core::EngineConfig::fast(),
            credence_server::RankerChoice::Bm25,
            credence_server::JobsConfig::default(),
        )
    })
}

fn job_post(state: &'static credence_server::AppState, path: &str, body: &str) -> (u16, String) {
    let req = credence_server::http::Request {
        method: "POST".into(),
        path: path.into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = credence_server::handle_request(state, &req);
    (resp.status, String::from_utf8(resp.body).unwrap())
}

prop! {
    /// For any request and any `max_evals` budget, the payload a job stores
    /// is the exact JSON value the synchronous endpoint returns — complete,
    /// exhausted, and validation-error outcomes alike.
    config(cases = 16);
    fn job_payload_equals_synchronous_payload(
        endpoint in gens::one_of(vec![
            gens::just("sentence-removal"),
            gens::just("query-augmentation"),
            gens::just("query-reduction"),
            gens::just("term-removal"),
        ]),
        query in gens::one_of(vec![
            gens::just("covid outbreak"),
            gens::just("vaccine research"),
            gens::just("outbreak"),
        ]),
        k_doc in gens::pair(gens::usize_range(1..4), gens::usize_range(0..4)),
        n_evals in gens::pair(gens::usize_range(1..3), gens::usize_range(0..12)),
    ) {
        use credence_json::{parse as parse_json, Value};
        let state = job_state();
        let (k, doc) = *k_doc;
        let (n, max_evals) = *n_evals;
        let request = format!(
            r#"{{"query": "{query}", "k": {k}, "doc": {doc}, "n": {n}, "max_evals": {max_evals}}}"#
        );

        let (sync_status, sync_body) =
            job_post(state, &format!("/api/v1/explain/{endpoint}"), &request);
        let sync_value = parse_json(&sync_body).unwrap();

        let envelope = format!(r#"{{"endpoint": "{endpoint}", "request": {request}}}"#);
        let (accepted, submit_body) = job_post(state, "/api/v1/jobs", &envelope);
        prop_assert_eq!(accepted, 202, "{}", submit_body);
        let id: u64 = parse_json(&submit_body)
            .unwrap()
            .get("job_id")
            .and_then(Value::as_str)
            .and_then(|wire| wire.strip_prefix("job-"))
            .and_then(|n| n.parse().ok())
            .unwrap();
        let terminal = state
            .jobs()
            .wait_terminal(id, std::time::Duration::from_secs(60))
            .expect("job reaches a terminal state");
        prop_assert!(terminal.is_terminal());

        let view = state.jobs().get(id, state.metrics()).unwrap();
        let (stored_status, stored) = view.result.expect("terminal job stores its result");
        prop_assert_eq!(stored_status, sync_status);
        prop_assert_eq!(stored, sync_value);
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather router: merged cluster responses are the single-node bytes.
// ---------------------------------------------------------------------------

/// Drive a router state in-process (its fanout legs still cross real
/// sockets to the worker).
fn router_post(
    state: &'static credence_server::RouterState,
    path: &str,
    body: &str,
) -> (u16, String) {
    use credence_server::App;
    let req = credence_server::http::Request {
        method: "POST".into(),
        path: path.into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = state.handle(&req);
    (resp.status, String::from_utf8(resp.body).unwrap())
}

prop! {
    /// The router's scatter-gather merge is byte-identical to the
    /// single-node response for every partition count 1..=8, on corpora
    /// built from duplicated template bodies — identical BM25 scores
    /// everywhere, so the (score desc, doc asc) tie-break carries the
    /// whole ordering and any merge discrepancy surfaces immediately.
    config(cases = 8);
    fn router_merge_matches_single_node_bytes(
        bodies in gens::vec_of(gens::one_of(vec![
            gens::just("covid outbreak closes the local school"),
            gens::just("covid outbreak covid outbreak tonight"),
            gens::just("vaccine research accelerates during the outbreak"),
            gens::just("garden fair draws a record crowd"),
        ]), 2..24),
        k in gens::usize_range(1..30),
    ) {
        let docs: Vec<Document> = bodies
            .iter()
            .map(|b| Document::from_body(b.to_string()))
            .collect();
        let state = credence_server::AppState::leak(docs, credence_core::EngineConfig::fast());
        let worker = credence_server::Server::bind("127.0.0.1:0", state)
            .unwrap()
            .spawn()
            .unwrap();
        let body = format!(r#"{{"query": "covid outbreak", "k": {k}}}"#);
        let (single_status, single) = job_post(state, "/api/v1/rank", &body);
        prop_assert_eq!(single_status, 200, "{}", single);
        for count in 1..=8u32 {
            let router = credence_server::RouterState::leak(
                vec![worker.addr()],
                credence_server::RouterConfig {
                    partitions: count,
                    fanout_deadline_ms: 10_000,
                },
            );
            let (status, routed) = router_post(router, "/api/v1/rank", &body);
            prop_assert_eq!(status, 200, "{}", routed);
            prop_assert_eq!(
                &routed,
                &single,
                "partition count {} must reproduce the single-node bytes",
                count
            );
        }
        worker.stop();
    }
}
