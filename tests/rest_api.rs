//! End-to-end REST test: boot the server over the demo corpus on a real TCP
//! socket and drive the Figure 2–5 scenarios through raw HTTP, exactly as
//! the original React front end drove the FastAPI backend.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_json::{parse, Value};
use credence_server::{AppState, Server, ServerHandle};

struct TestServer {
    handle: ServerHandle,
    fake_news: usize,
    near_duplicate: usize,
}

fn server() -> &'static TestServer {
    static SERVER: OnceLock<TestServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let demo = covid_demo_corpus();
        let state = AppState::leak(demo.docs.clone(), EngineConfig::fast());
        let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
        TestServer {
            handle,
            fake_news: demo.fake_news,
            near_duplicate: demo.near_duplicate,
        }
    })
}

/// One raw HTTP round trip: status, header section, body text.
fn raw_request(method: &str, path: &str, body: Option<&str>) -> (u16, String, String) {
    let srv = server();
    let mut conn = TcpStream::connect(srv.handle.addr()).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body_start = out.find("\r\n\r\n").expect("header terminator") + 4;
    (
        status,
        out[..body_start].to_string(),
        out[body_start..].to_string(),
    )
}

fn request(method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, _, body) = raw_request(method, path, body);
    (status, parse(&body).expect("JSON body"))
}

#[test]
fn health_check() {
    let (status, v) = request("GET", "/api/v1/health", None);
    assert_eq!(status, 200);
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
}

#[test]
fn corpus_lists_demo_documents() {
    let (status, v) = request("GET", "/api/v1/corpus", None);
    assert_eq!(status, 200);
    let n = v.get("num_docs").unwrap().as_u64().unwrap();
    assert!(n >= 40);
}

#[test]
fn running_example_over_http() {
    let (status, v) = request(
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 10}"#),
    );
    assert_eq!(status, 200);
    let ranking = v.get("ranking").unwrap().as_array().unwrap();
    assert_eq!(ranking.len(), 10);
    let third = &ranking[2];
    assert_eq!(third.get("rank").unwrap().as_u64(), Some(3));
    assert_eq!(
        third.get("doc").unwrap().as_u64(),
        Some(server().fake_news as u64)
    );
    assert_eq!(
        third.get("name").unwrap().as_str(),
        Some("fake-news-644529")
    );
}

#[test]
fn figure2_over_http() {
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        server().fake_news
    );
    let (status, v) = request("POST", "/api/v1/explain/sentence-removal", Some(&body));
    assert_eq!(status, 200);
    let explanations = v.get("explanations").unwrap().as_array().unwrap();
    assert_eq!(explanations.len(), 1);
    let e = &explanations[0];
    assert_eq!(e.get("old_rank").unwrap().as_u64(), Some(3));
    assert_eq!(e.get("new_rank").unwrap().as_u64(), Some(11));
    assert_eq!(
        e.get("removed_sentences")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        2
    );
    assert_eq!(e.get("importance").unwrap().as_f64(), Some(4.0));
}

#[test]
fn figure3_over_http() {
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 7, "threshold": 2}}"#,
        server().fake_news
    );
    let (status, v) = request("POST", "/api/v1/explain/query-augmentation", Some(&body));
    assert_eq!(status, 200);
    let explanations = v.get("explanations").unwrap().as_array().unwrap();
    assert_eq!(explanations.len(), 7);
    for e in explanations {
        assert!(e.get("new_rank").unwrap().as_u64().unwrap() <= 2);
    }
}

#[test]
fn figure4_over_http() {
    let srv = server();
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        srv.fake_news
    );
    let (status, v) = request("POST", "/api/v1/explain/doc2vec-nearest", Some(&body));
    assert_eq!(status, 200);
    let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
    assert_eq!(
        e.get("doc").unwrap().as_u64(),
        Some(srv.near_duplicate as u64)
    );
    assert!(e.get("similarity").unwrap().as_f64().unwrap() > 0.4);
    assert!(e.get("rank").unwrap().is_null(), "not retrieved originally");

    let (status, v) = request(
        "POST",
        "/api/v1/explain/cosine-sampled",
        Some(&format!(
            r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1, "samples": 1000}}"#,
            srv.fake_news
        )),
    );
    assert_eq!(status, 200);
    let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
    assert_eq!(
        e.get("doc").unwrap().as_u64(),
        Some(srv.near_duplicate as u64)
    );
}

#[test]
fn figure5_over_http() {
    let srv = server();
    // Fetch the document, apply the Figure-5 edits client-side, re-rank.
    let (status, doc) = request("GET", &format!("/api/v1/doc/{}", srv.fake_news), None);
    assert_eq!(status, 200);
    let original = doc.get("body").unwrap().as_str().unwrap();
    let edited = original
        .replace("covid-19", "flu")
        .replace("Covid-19", "flu")
        .replace("covid", "flu")
        .replace("outbreak", "the flu");
    let payload = credence_json::to_string(&credence_json::obj([
        ("query", Value::from("covid outbreak")),
        ("k", Value::from(10usize)),
        ("doc", Value::from(srv.fake_news)),
        ("body", Value::from(edited)),
    ]));
    let (status, v) = request("POST", "/api/v1/rerank", Some(&payload));
    assert_eq!(status, 200);
    assert_eq!(v.get("valid").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("old_rank").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("new_rank").unwrap().as_u64(), Some(11));
    assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 11);
}

#[test]
fn topics_over_http() {
    let (status, v) = request(
        "POST",
        "/api/v1/topics",
        Some(r#"{"query": "covid outbreak", "k": 10, "num_topics": 3}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(v.get("topics").unwrap().as_array().unwrap().len(), 3);
}

#[test]
fn error_statuses_over_http() {
    let (status, v) = request("POST", "/rank", Some("not json"));
    assert_eq!(status, 400);
    let err = v.get("error").expect("error envelope");
    assert_eq!(err.get("code").unwrap().as_str(), Some("invalid_json"));
    assert!(err.get("message").unwrap().as_str().is_some());

    let (status, v) = request(
        "POST",
        "/explain/sentence-removal",
        Some(r#"{"query": "covid outbreak", "k": 10, "doc": 99999}"#),
    );
    assert_eq!(status, 404);
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("doc_not_found")
    );

    let (status, _) = request("GET", "/nonexistent", None);
    assert_eq!(status, 404);
}

#[test]
fn unversioned_alias_answers_with_deprecation_header() {
    let (status, headers, alias_body) = raw_request(
        "POST",
        "/rank",
        Some(r#"{"query": "covid outbreak", "k": 3}"#),
    );
    assert_eq!(status, 200);
    assert!(headers.contains("deprecation: true"), "{headers}");
    assert!(
        headers.contains("link: </api/v1/rank>; rel=\"successor-version\""),
        "{headers}"
    );
    let (status, headers, canonical_body) = raw_request(
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 3}"#),
    );
    assert_eq!(status, 200);
    assert!(!headers.contains("deprecation"), "{headers}");
    assert_eq!(alias_body, canonical_body);
}

#[test]
fn deadline_capped_search_returns_partial_result_over_http() {
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1, "deadline_ms": 0}}"#,
        server().fake_news
    );
    let (status, v) = request("POST", "/api/v1/explain/sentence-removal", Some(&body));
    assert_eq!(
        status, 200,
        "a tripped budget is a partial result, not an error"
    );
    assert_eq!(v.get("status").unwrap().as_str(), Some("deadline"));
    assert!(v.get("candidates_evaluated").unwrap().as_u64().is_some());
    assert!(v.get("explanations").unwrap().as_array().is_some());

    // The hit shows up in the metrics registry.
    let (status, _, text) = raw_request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let hits: u64 = text
        .lines()
        .find(|l| l.starts_with("credence_deadline_hits_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("deadline-hit counter present");
    assert!(hits >= 1, "{hits}");
}

#[test]
fn metrics_exposition_over_http() {
    // Generate traffic first so the rank counter is nonzero.
    let (status, _) = request(
        "POST",
        "/api/v1/rank",
        Some(r#"{"query": "covid outbreak", "k": 3}"#),
    );
    assert_eq!(status, 200);
    let (status, headers, text) = raw_request("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(headers.contains("content-type: text/plain"), "{headers}");
    assert!(text.contains("# TYPE credence_requests_total counter"));
    assert!(text.contains("credence_requests_total{endpoint=\"rank\",status=\"200\"}"));
    assert!(text.contains("credence_request_duration_seconds_bucket"));
    assert!(text.contains("credence_request_duration_quantile_seconds{quantile=\"0.95\"}"));
}
