//! End-to-end REST test: boot the server over the demo corpus on a real TCP
//! socket and drive the Figure 2–5 scenarios through raw HTTP, exactly as
//! the original React front end drove the FastAPI backend.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_json::{parse, Value};
use credence_server::{AppState, Server, ServerHandle};

struct TestServer {
    handle: ServerHandle,
    fake_news: usize,
    near_duplicate: usize,
}

fn server() -> &'static TestServer {
    static SERVER: OnceLock<TestServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let demo = covid_demo_corpus();
        let state = AppState::leak(demo.docs.clone(), EngineConfig::fast());
        let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
        TestServer {
            handle,
            fake_news: demo.fake_news,
            near_duplicate: demo.near_duplicate,
        }
    })
}

fn request(method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let srv = server();
    let mut conn = TcpStream::connect(srv.handle.addr()).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let json_start = out.find("\r\n\r\n").expect("header terminator") + 4;
    let value = parse(&out[json_start..]).expect("JSON body");
    (status, value)
}

#[test]
fn health_check() {
    let (status, v) = request("GET", "/health", None);
    assert_eq!(status, 200);
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
}

#[test]
fn corpus_lists_demo_documents() {
    let (status, v) = request("GET", "/corpus", None);
    assert_eq!(status, 200);
    let n = v.get("num_docs").unwrap().as_u64().unwrap();
    assert!(n >= 40);
}

#[test]
fn running_example_over_http() {
    let (status, v) = request(
        "POST",
        "/rank",
        Some(r#"{"query": "covid outbreak", "k": 10}"#),
    );
    assert_eq!(status, 200);
    let ranking = v.get("ranking").unwrap().as_array().unwrap();
    assert_eq!(ranking.len(), 10);
    let third = &ranking[2];
    assert_eq!(third.get("rank").unwrap().as_u64(), Some(3));
    assert_eq!(
        third.get("doc").unwrap().as_u64(),
        Some(server().fake_news as u64)
    );
    assert_eq!(
        third.get("name").unwrap().as_str(),
        Some("fake-news-644529")
    );
}

#[test]
fn figure2_over_http() {
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        server().fake_news
    );
    let (status, v) = request("POST", "/explain/sentence-removal", Some(&body));
    assert_eq!(status, 200);
    let explanations = v.get("explanations").unwrap().as_array().unwrap();
    assert_eq!(explanations.len(), 1);
    let e = &explanations[0];
    assert_eq!(e.get("old_rank").unwrap().as_u64(), Some(3));
    assert_eq!(e.get("new_rank").unwrap().as_u64(), Some(11));
    assert_eq!(
        e.get("removed_sentences")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        2
    );
    assert_eq!(e.get("importance").unwrap().as_f64(), Some(4.0));
}

#[test]
fn figure3_over_http() {
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 7, "threshold": 2}}"#,
        server().fake_news
    );
    let (status, v) = request("POST", "/explain/query-augmentation", Some(&body));
    assert_eq!(status, 200);
    let explanations = v.get("explanations").unwrap().as_array().unwrap();
    assert_eq!(explanations.len(), 7);
    for e in explanations {
        assert!(e.get("new_rank").unwrap().as_u64().unwrap() <= 2);
    }
}

#[test]
fn figure4_over_http() {
    let srv = server();
    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        srv.fake_news
    );
    let (status, v) = request("POST", "/explain/doc2vec-nearest", Some(&body));
    assert_eq!(status, 200);
    let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
    assert_eq!(
        e.get("doc").unwrap().as_u64(),
        Some(srv.near_duplicate as u64)
    );
    assert!(e.get("similarity").unwrap().as_f64().unwrap() > 0.4);
    assert!(e.get("rank").unwrap().is_null(), "not retrieved originally");

    let (status, v) = request(
        "POST",
        "/explain/cosine-sampled",
        Some(&format!(
            r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1, "samples": 1000}}"#,
            srv.fake_news
        )),
    );
    assert_eq!(status, 200);
    let e = &v.get("explanations").unwrap().as_array().unwrap()[0];
    assert_eq!(
        e.get("doc").unwrap().as_u64(),
        Some(srv.near_duplicate as u64)
    );
}

#[test]
fn figure5_over_http() {
    let srv = server();
    // Fetch the document, apply the Figure-5 edits client-side, re-rank.
    let (status, doc) = request("GET", &format!("/doc/{}", srv.fake_news), None);
    assert_eq!(status, 200);
    let original = doc.get("body").unwrap().as_str().unwrap();
    let edited = original
        .replace("covid-19", "flu")
        .replace("Covid-19", "flu")
        .replace("covid", "flu")
        .replace("outbreak", "the flu");
    let payload = credence_json::to_string(&credence_json::obj([
        ("query", Value::from("covid outbreak")),
        ("k", Value::from(10usize)),
        ("doc", Value::from(srv.fake_news)),
        ("body", Value::from(edited)),
    ]));
    let (status, v) = request("POST", "/rerank", Some(&payload));
    assert_eq!(status, 200);
    assert_eq!(v.get("valid").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("old_rank").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("new_rank").unwrap().as_u64(), Some(11));
    assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 11);
}

#[test]
fn topics_over_http() {
    let (status, v) = request(
        "POST",
        "/topics",
        Some(r#"{"query": "covid outbreak", "k": 10, "num_topics": 3}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(v.get("topics").unwrap().as_array().unwrap().len(), 3);
}

#[test]
fn error_statuses_over_http() {
    let (status, v) = request("POST", "/rank", Some("not json"));
    assert_eq!(status, 400);
    assert!(v.get("error").is_some());

    let (status, _) = request(
        "POST",
        "/explain/sentence-removal",
        Some(r#"{"query": "covid outbreak", "k": 10, "doc": 99999}"#),
    );
    assert_eq!(status, 404);

    let (status, _) = request("GET", "/nonexistent", None);
    assert_eq!(status, 404);
}
