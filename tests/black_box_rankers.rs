//! Black-box genericity: §II-A defines the ranker as a black box, so every
//! explanation algorithm must work unchanged against *any* `Ranker`
//! implementation. These tests run the full explanation suite against BM25,
//! query-likelihood (both smoothers), and the neural-sim hybrid.

use credence_core::{
    cosine_sampled, explain_query_augmentation, explain_sentence_removal, test_perturbation,
    CosineSampledConfig, QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::{
    rank_corpus, Bm25Ranker, NeuralSimConfig, NeuralSimRanker, QlSmoothing, QueryLikelihoodRanker,
    Ranker, Rm3Config, Rm3Ranker,
};
use credence_text::Analyzer;

fn build_index() -> InvertedIndex {
    InvertedIndex::build(covid_demo_corpus().docs, Analyzer::english())
}

/// Run the same end-to-end story against one ranker: find the fake-news
/// article wherever this model ranks it, then explain it four ways.
fn exercise_ranker(ranker: &dyn Ranker, fake_news: DocId) {
    let query = "covid outbreak";

    let ranking = rank_corpus(ranker, query);
    let rank = ranking
        .rank_of(fake_news)
        .unwrap_or_else(|| panic!("{}: fake news must be ranked", ranker.name()));

    // The fake article is relevant under every model (it is about the
    // query's topic), but its exact rank is model-specific; pick the
    // smallest demo-like cutoff that keeps it inside the top-k.
    let k = rank.max(10);
    assert!(
        rank <= k + 2,
        "{}: fake news unexpectedly deep at {rank}",
        ranker.name()
    );

    // Sentence removal: any returned explanation must be valid.
    let sr = explain_sentence_removal(
        ranker,
        query,
        k,
        fake_news,
        &SentenceRemovalConfig {
            n: 1,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: sentence removal failed: {e}", ranker.name()));
    for e in &sr.explanations {
        assert!(
            e.new_rank > k,
            "{}: invalid explanation {e:?}",
            ranker.name()
        );
    }

    // Query augmentation (only meaningful when not already rank 1).
    if rank > 1 {
        let qa = explain_query_augmentation(
            ranker,
            query,
            k,
            fake_news,
            &QueryAugmentationConfig {
                n: 2,
                threshold: rank - 1,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: query augmentation failed: {e}", ranker.name()));
        for e in &qa.explanations {
            assert!(
                e.new_rank < rank,
                "{}: augmentation must raise the rank: {e:?}",
                ranker.name()
            );
        }
    }

    // Cosine-sampled instances: never from the top-k, never the instance.
    let top: Vec<DocId> = ranking.top_k(k);
    let cs = cosine_sampled(
        ranker,
        query,
        k,
        fake_news,
        3,
        &CosineSampledConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{}: cosine sampled failed: {e}", ranker.name()));
    for e in &cs {
        assert!(
            !top.contains(&e.doc),
            "{}: {e:?} is relevant",
            ranker.name()
        );
        assert_ne!(e.doc, fake_news);
    }

    // Builder: gutting the document must always be a valid counterfactual,
    // whatever the model (no query terms, no semantic affinity).
    let outcome = test_perturbation(ranker, query, k, fake_news, "entirely unrelated text")
        .unwrap_or_else(|e| panic!("{}: builder failed: {e}", ranker.name()));
    assert!(
        outcome.new_rank >= rank,
        "{}: gutted document cannot rise",
        ranker.name()
    );
}

#[test]
fn bm25_anserini_defaults() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

#[test]
fn bm25_robertson_parameters() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = Bm25Ranker::new(&idx, Bm25Params::robertson());
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

#[test]
fn query_likelihood_dirichlet() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = QueryLikelihoodRanker::new(&idx, QlSmoothing::Dirichlet { mu: 1000.0 });
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

#[test]
fn query_likelihood_jelinek_mercer() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = QueryLikelihoodRanker::new(&idx, QlSmoothing::JelinekMercer { lambda: 0.5 });
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

#[test]
fn bm25_rm3_feedback() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = Rm3Ranker::new(&idx, Rm3Config::default());
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

#[test]
fn neural_sim_hybrid() {
    let idx = build_index();
    let demo = covid_demo_corpus();
    let ranker = NeuralSimRanker::train(&idx, NeuralSimConfig::default());
    exercise_ranker(&ranker, DocId(demo.fake_news as u32));
}

/// The scoring contract every implementation must honour: indexed and
/// ad-hoc scoring agree on identical text.
#[test]
fn doc_text_agreement_across_all_rankers() {
    let idx = build_index();
    let bm25 = Bm25Ranker::new(&idx, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(&idx, QlSmoothing::default());
    let jm = QueryLikelihoodRanker::new(&idx, QlSmoothing::JelinekMercer { lambda: 0.3 });
    let neural = NeuralSimRanker::train(&idx, NeuralSimConfig::default());
    let rankers: Vec<&dyn Ranker> = vec![&bm25, &ql, &jm, &neural];
    for ranker in rankers {
        for d in idx.doc_ids().take(12) {
            let body = &idx.document(d).unwrap().body;
            let a = ranker.score_doc("covid outbreak vaccine", d);
            let b = ranker.score_text("covid outbreak vaccine", body);
            assert!(
                (a - b).abs() < 1e-9,
                "{}: doc {d} scores diverge: {a} vs {b}",
                ranker.name()
            );
        }
    }
}

/// Different models produce different rankings (the explainers are not
/// accidentally coupled to one scorer).
#[test]
fn models_disagree_somewhere() {
    let idx = build_index();
    let bm25 = Bm25Ranker::new(&idx, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(&idx, QlSmoothing::JelinekMercer { lambda: 0.9 });
    let a = rank_corpus(&bm25, "covid outbreak vaccine tracking");
    let b = rank_corpus(&ql, "covid outbreak vaccine tracking");
    let order_a: Vec<DocId> = a.entries().iter().map(|&(d, _)| d).collect();
    let order_b: Vec<DocId> = b.entries().iter().map(|&(d, _)| d).collect();
    assert_ne!(order_a, order_b, "expected some rank disagreement");
}
