#!/usr/bin/env bash
# Hermetic CI for the CREDENCE reproduction.
#
# Everything runs with the cargo registry disabled, so a registry
# dependency can never silently reappear in any Cargo.toml: resolution
# itself fails the build here before a human reviews the diff.
#
# Usage: ./ci.sh

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> credence-serve smoke (REST /api/v1 + /metrics + deadline budget)"
./scripts/serve_smoke.sh

echo "==> router smoke (2-worker scatter-gather, byte parity vs single-node)"
./scripts/router_smoke.sh

echo "==> corpus smoke (registry lifecycle, generation snapshots, corpus metrics)"
./scripts/corpus_smoke.sh

echo "==> cache smoke (explanation cache hits, bypass, invalidation, /metrics)"
./scripts/cache_smoke.sh

echo "==> loadgen capacity smoke (CREDENCE_BENCH_SMOKE=1)"
mkdir -p target/credence-bench
CREDENCE_BENCH_SMOKE=1 ./target/release/loadgen \
    --out target/credence-bench/BENCH_capacity_smoke.json

echo "==> loadgen repeated-trace smoke (zipfian explain hot set, CREDENCE_BENCH_SMOKE=1)"
CREDENCE_BENCH_SMOKE=1 ./target/release/loadgen --trace repeated \
    --out target/credence-bench/BENCH_capacity_repeated_smoke.json

echo "==> smoke benches (CREDENCE_BENCH_SMOKE=1)"
CREDENCE_BENCH_SMOKE=1 cargo bench -p credence-bench --offline

echo "==> bench_check (throughput regression gate vs BENCH_baseline.json)"
cargo run -q -p credence-bench --bin bench_check --offline

echo "==> ci.sh: all green"
