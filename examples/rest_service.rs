//! Drive the CREDENCE REST API end to end in one process: boot the server
//! on an ephemeral port (the Figure-1 architecture's system boundary) and
//! issue the same HTTP calls the React front end would.
//!
//! ```sh
//! cargo run --example rest_service
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_server::{AppState, Server};

fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut conn = TcpStream::connect(addr).unwrap();
    let raw = match body {
        None => format!("{method} {path} HTTP/1.1\r\nHost: demo\r\n\r\n"),
        Some(b) => format!(
            "{method} {path} HTTP/1.1\r\nHost: demo\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    };
    conn.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).unwrap();
    out.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}

fn main() {
    let demo = covid_demo_corpus();
    println!(
        "booting credence server over {} documents...",
        demo.docs.len()
    );
    let state = AppState::leak(demo.docs.clone(), EngineConfig::fast());
    let handle = Server::bind("127.0.0.1:0", state).unwrap().spawn().unwrap();
    let addr = handle.addr();
    println!("listening on http://{addr}\n");

    println!(
        "GET /api/v1/health\n  {}\n",
        http(addr, "GET", "/api/v1/health", None)
    );

    println!("POST /api/v1/rank {{query: \"covid outbreak\", k: 3}}");
    println!(
        "  {}\n",
        http(
            addr,
            "POST",
            "/api/v1/rank",
            Some(r#"{"query": "covid outbreak", "k": 3}"#)
        )
    );

    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        demo.fake_news
    );
    println!("POST /api/v1/explain/sentence-removal (the Figure-2 request)");
    println!(
        "  {}\n",
        http(
            addr,
            "POST",
            "/api/v1/explain/sentence-removal",
            Some(&body)
        )
    );

    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 3, "threshold": 2}}"#,
        demo.fake_news
    );
    println!("POST /api/v1/explain/query-augmentation (the Figure-3 request)");
    println!(
        "  {}\n",
        http(
            addr,
            "POST",
            "/api/v1/explain/query-augmentation",
            Some(&body)
        )
    );

    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1}}"#,
        demo.fake_news
    );
    println!("POST /api/v1/explain/doc2vec-nearest (the Figure-4 request)");
    println!(
        "  {}\n",
        http(addr, "POST", "/api/v1/explain/doc2vec-nearest", Some(&body))
    );

    println!("POST /api/v1/topics");
    println!(
        "  {}\n",
        http(
            addr,
            "POST",
            "/api/v1/topics",
            Some(r#"{"query": "covid outbreak", "k": 10, "num_topics": 3}"#)
        )
    );

    let body = format!(
        r#"{{"query": "covid outbreak", "k": 10, "doc": {}, "n": 1, "deadline_ms": 0}}"#,
        demo.fake_news
    );
    println!("POST /api/v1/explain/sentence-removal with deadline_ms: 0 (partial result)");
    println!(
        "  {}\n",
        http(
            addr,
            "POST",
            "/api/v1/explain/sentence-removal",
            Some(&body)
        )
    );

    println!("GET /metrics (first lines)");
    let metrics = http(addr, "GET", "/metrics", None);
    for line in metrics.lines().take(8) {
        println!("  {line}");
    }
    println!();

    handle.stop();
    println!("server stopped.");
}
