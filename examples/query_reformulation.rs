//! Query reformulation with counterfactual queries (§III-A, second half):
//! discover the terms that distinguish a document within the ranking, then
//! use them to surface other documents like it — the paper's "discover other
//! fake news articles" workflow.
//!
//! ```sh
//! cargo run --example query_reformulation
//! ```

use credence_core::{CredenceEngine, EngineConfig, QueryAugmentationConfig};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());

    let fake = DocId(demo.fake_news as u32);

    // Step 1: find the distinguishing terms of the suspicious article.
    let qa = engine
        .query_augmentation(
            demo.query,
            demo.k,
            fake,
            &QueryAugmentationConfig {
                n: 7,
                threshold: 2,
                ..Default::default()
            },
        )
        .expect("augmentations exist");
    println!("### Counterfactual queries for the fake-news article");
    for e in &qa.explanations {
        println!("  {:<44} -> rank {}", e.augmented_query, e.new_rank);
    }

    // Step 2: reformulate with the distinguishing vocabulary and search the
    // corpus again — documents sharing the conspiracy vocabulary surface,
    // including ones absent from the original top-10.
    let reformulated = "covid outbreak 5g microchip tracking";
    println!("\n### Reformulated search: {reformulated:?}");
    let original_top: Vec<DocId> = engine.full_ranking(demo.query).top_k(demo.k);
    for row in engine.rank(reformulated, 5) {
        let newly_surfaced = !original_top.contains(&row.doc);
        println!(
            "  {}. [{}] {}{}",
            row.rank,
            row.name,
            row.title,
            if newly_surfaced {
                "  <-- not in the original top-10"
            } else {
                ""
            }
        );
    }

    // Step 3: the near-duplicate conspiracy article is now findable.
    let near_dup = DocId(demo.near_duplicate as u32);
    let rank = engine.full_ranking(reformulated).rank_of(near_dup);
    println!(
        "\nThe near-duplicate fake-news article [{}] now ranks {:?} — discovered through \
         terms the counterfactual explanations highlighted.",
        index.document(near_dup).unwrap().name,
        rank
    );
}
