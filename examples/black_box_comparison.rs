//! One document, four black-box rankers, four sets of explanations.
//!
//! §II-A defines the ranker as a black box; this example makes that
//! concrete by explaining the same fake-news article under BM25,
//! query-likelihood, BM25+RM3 pseudo-relevance feedback, and the
//! neural-sim hybrid — showing how the explanations shift with the model.
//!
//! ```sh
//! cargo run --example black_box_comparison
//! ```

use credence_core::{explain_sentence_removal, SentenceRemovalConfig};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::{
    rank_corpus, Bm25Ranker, NeuralSimConfig, NeuralSimRanker, QlSmoothing, QueryLikelihoodRanker,
    Ranker, Rm3Config, Rm3Ranker,
};
use credence_text::Analyzer;

fn main() {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let fake = DocId(demo.fake_news as u32);

    let bm25 = Bm25Ranker::new(&index, Bm25Params::default());
    let ql = QueryLikelihoodRanker::new(&index, QlSmoothing::default());
    let rm3 = Rm3Ranker::new(&index, Rm3Config::default());
    println!("training the neural-sim embedding space...");
    let neural = NeuralSimRanker::train(&index, NeuralSimConfig::default());
    let models: Vec<&dyn Ranker> = vec![&bm25, &ql, &rm3, &neural];

    println!(
        "\nexplaining document [{}] for {:?} under four models:\n",
        index.document(fake).unwrap().name,
        demo.query
    );
    for model in models {
        let ranking = rank_corpus(model, demo.query);
        let rank = ranking.rank_of(fake).expect("always ranked");
        let k = rank.max(demo.k);
        let result = explain_sentence_removal(
            model,
            demo.query,
            k,
            fake,
            &SentenceRemovalConfig::default(),
        )
        .expect("explainable");
        print!("{:<12} rank {:>2}/{k}  ", model.name(), rank);
        match result.explanations.first() {
            None => println!("no counterfactual within budget"),
            Some(e) => println!(
                "counterfactual: remove sentences {:?} -> rank {} ({} candidates tried)",
                e.removed, e.new_rank, e.candidates_evaluated
            ),
        }
    }

    println!(
        "\nthe *same* algorithm explains every model — only the ranks and the\n\
         discovered perturbations change, because they are properties of the model."
    );
}
