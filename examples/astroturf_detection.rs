//! Domain generality: the same counterfactual toolkit on product reviews.
//!
//! A shopper searches `battery life` over earbud reviews; a paid-looking
//! review ranks highly. Counterfactual queries surface its astroturfing
//! vocabulary (*promo*, *coupon*, *influencer*), and the instance-based
//! explainer finds the same shill template posted for a different product.
//!
//! ```sh
//! cargo run --example astroturf_detection
//! ```

use credence_core::{CredenceEngine, EngineConfig, QueryAugmentationConfig};
use credence_corpus::reviews_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    let demo = reviews_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
    let shill = DocId(demo.shill as u32);

    println!("### Ranking for {:?} (k = {})", demo.query, demo.k);
    let mut shill_rank = 0;
    for row in engine.rank(demo.query, demo.k) {
        let marker = if row.doc == shill {
            shill_rank = row.rank;
            "  <-- looks sponsored"
        } else {
            ""
        };
        println!("  {}. [{}] {}{}", row.rank, row.name, row.title, marker);
    }

    println!("\n### Which queries would rank the suspicious review even higher?");
    let qa = engine
        .query_augmentation(
            demo.query,
            demo.k,
            shill,
            &QueryAugmentationConfig {
                n: 5,
                threshold: shill_rank.saturating_sub(1).max(1),
                ..Default::default()
            },
        )
        .expect("augmentations");
    for e in &qa.explanations {
        println!("  {:<40} -> rank {}", e.augmented_query, e.new_rank);
    }
    println!(
        "  top distinguishing terms (TF-IDF within the top-{}):",
        demo.k
    );
    for c in qa.candidates.iter().take(5) {
        println!("    {:<12} tf-idf {:.2}", c.surface, c.tfidf);
    }

    println!("\n### Is this a template? (Doc2Vec nearest non-relevant instance)");
    for inst in engine
        .doc2vec_nearest(demo.query, demo.k, shill, 1)
        .expect("instances")
    {
        let d = index.document(inst.doc).unwrap();
        println!(
            "  [{}] \"{}\" — {:.0}% similar",
            d.name,
            d.title,
            inst.similarity * 100.0
        );
        println!("  {}", d.body);
    }
    println!("\nThe same promo-code template, posted for a blender. Astroturfing confirmed.");
}
