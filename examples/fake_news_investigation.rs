//! The paper's running example, end to end: a user investigates a fake-news
//! article ranked 3/10 for "covid outbreak" on the COVID-19 Articles corpus
//! (§III of the paper; Figures 2, 3 and 4).
//!
//! ```sh
//! cargo run --example fake_news_investigation
//! ```

use credence_core::{CredenceEngine, EngineConfig, QueryAugmentationConfig, SentenceRemovalConfig};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    println!(
        "indexed {} documents; training doc2vec...",
        index.num_docs()
    );
    let engine = CredenceEngine::new(&ranker, EngineConfig::default());

    let (query, k) = (demo.query, demo.k);
    let fake = DocId(demo.fake_news as u32);

    // -- The premise: the article ranks 3/10. -----------------------------
    println!("\n### Ranking for {query:?}, k = {k}");
    for row in engine.rank(query, k) {
        let marker = if row.doc == fake {
            "  <-- fake news"
        } else {
            ""
        };
        println!("  {:>2}. [{}] {}{}", row.rank, row.name, row.title, marker);
    }

    // -- Figure 2: why is it relevant? Remove sentences. ------------------
    println!("\n### Figure 2 — counterfactual document (sentence removal)");
    let sr = engine
        .sentence_removal(query, k, fake, &SentenceRemovalConfig::default())
        .expect("fake news article is explainable");
    println!(
        "  sentence importances: {:?}",
        sr.importance.iter().map(|&x| x as u32).collect::<Vec<_>>()
    );
    let e = &sr.explanations[0];
    println!(
        "  minimal counterfactual removes {} sentences (importance {}), rank {} -> {}:",
        e.removed.len(),
        e.importance,
        e.old_rank,
        e.new_rank
    );
    for text in &e.removed_text {
        println!("    struck out: \"{text}\"");
    }
    println!(
        "  ({} candidate perturbations evaluated — every single-sentence removal fails first)",
        e.candidates_evaluated
    );

    // -- Figure 3: which queries would rank it even higher? ---------------
    println!("\n### Figure 3 — counterfactual queries (n = 7, threshold = 2)");
    let qa = engine
        .query_augmentation(
            query,
            k,
            fake,
            &QueryAugmentationConfig {
                n: 7,
                threshold: 2,
                ..Default::default()
            },
        )
        .expect("augmentable");
    for e in &qa.explanations {
        println!(
            "  {:<42} rank {} -> {}",
            format!("{:?}", e.augmented_query),
            e.old_rank,
            e.new_rank
        );
    }
    println!("  top candidate terms by TF-IDF within the top-{k}:");
    for c in qa.candidates.iter().take(5) {
        println!(
            "    {:<12} tf = {}, in {} of {} ranked docs, tf-idf = {:.2}",
            c.surface, c.tf, c.set_df, k, c.tfidf
        );
    }

    // -- Figure 4: a real document on the other side of the boundary. -----
    println!("\n### Figure 4 — instance-based counterfactual (Doc2Vec nearest)");
    let instances = engine.doc2vec_nearest(query, k, fake, 1).expect("instance");
    for inst in &instances {
        let d = index.document(inst.doc).unwrap();
        println!(
            "  [{}] \"{}\" — {:.0}% similar, rank {:?}",
            d.name,
            d.title,
            inst.similarity * 100.0,
            inst.rank
        );
        println!("  body: {}...", &d.body[..d.body.len().min(160)]);
    }
    println!("\n  the near-copy lacks exactly the terms 'covid' and 'outbreak' —");
    println!("  the decision boundary the ranker respects, made visible.");
}
