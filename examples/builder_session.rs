//! A Builder-page session (§III-C, Figure 5): rank, browse topics, edit the
//! fake-news document, re-rank, and read the movement arrows.
//!
//! ```sh
//! cargo run --example builder_session
//! ```

use credence_core::{CredenceEngine, Edit, EngineConfig};
use credence_corpus::covid_demo_corpus;
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    let demo = covid_demo_corpus();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());

    let (query, k) = (demo.query, demo.k);
    let fake = DocId(demo.fake_news as u32);

    // 1. RANK.
    println!("### RANK: {query:?}, k = {k}");
    for row in engine.rank(query, k) {
        println!("  {:>2}. [{}] {}", row.rank, row.name, row.title);
    }

    // 2. BROWSE TOPICS across the ranked documents.
    println!("\n### BROWSE TOPICS (LDA over the top-{k})");
    for topic in engine.topics(query, k, 3).expect("topics") {
        let terms: Vec<String> = topic.terms.iter().take(6).map(|(t, _)| t.clone()).collect();
        println!(
            "  topic {} (weight {:.2}): {}",
            topic.topic,
            topic.weight,
            terms.join(", ")
        );
    }

    // 3. EDIT: the Figure-5 perturbation.
    let edits = [
        Edit::replace("covid", "flu"),
        Edit::replace("covid-19", "flu"),
        Edit::replace("outbreak", "the flu"),
    ];
    println!(
        "\n### EDIT document [{}]:",
        index.document(fake).unwrap().name
    );
    println!("  replace 'covid'    -> 'flu'");
    println!("  replace 'covid-19' -> 'flu'");
    println!("  replace 'outbreak' -> 'the flu'");

    // 4. RE-RANK.
    let outcome = engine
        .builder_edits(query, k, fake, &edits)
        .expect("builder outcome");
    println!(
        "\n### RE-RANK (top {} pool, incl. revealed rank-{} doc)",
        k + 1,
        k + 1
    );
    for row in &outcome.rows {
        let arrow = match row.movement() {
            m if m < 0 => "\u{2191}", // raised
            m if m > 0 => "\u{2193}", // lowered
            _ => "=",
        };
        let doc = index.document(row.doc).unwrap();
        let mut tags = Vec::new();
        if row.substituted {
            tags.push("edited");
        }
        if Some(row.doc) == outcome.revealed {
            tags.push("revealed (+)");
        }
        println!(
            "  {:>2}. {} [{}] {} {}",
            row.new_rank,
            arrow,
            doc.name,
            doc.title,
            if tags.is_empty() {
                String::new()
            } else {
                format!("({})", tags.join(", "))
            }
        );
    }
    println!(
        "\n  {} valid counterfactual: rank {} -> {} (k = {k})",
        if outcome.valid {
            "\u{2713}"
        } else {
            "\u{2717}"
        },
        outcome.old_rank,
        outcome.new_rank
    );
}
