//! Index persistence workflow: build once, save, reload, explain.
//!
//! Mirrors how the original service loaded a prebuilt Lucene index at
//! startup instead of re-analysing the corpus on every boot.
//!
//! ```sh
//! cargo run --example persist_workflow
//! ```

use std::time::Instant;

use credence_core::{CredenceEngine, EngineConfig, SentenceRemovalConfig};
use credence_corpus::covid_demo_corpus;
use credence_index::{load_index, save_index, Bm25Params, DocId, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    let demo = covid_demo_corpus();
    let path = std::env::temp_dir().join("credence_demo.cridx");

    // Build and save.
    let t = Instant::now();
    let index = InvertedIndex::build(demo.docs.clone(), Analyzer::english());
    println!(
        "built index over {} docs in {:.1} ms",
        index.num_docs(),
        t.elapsed().as_secs_f64() * 1e3
    );
    save_index(&index, &path).expect("save");
    println!(
        "saved to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // Reload and verify it behaves identically.
    let t = Instant::now();
    let loaded = load_index(&path).expect("load");
    println!(
        "reloaded in {:.1} ms ({} docs, {} terms)",
        t.elapsed().as_secs_f64() * 1e3,
        loaded.num_docs(),
        loaded.vocabulary().len()
    );

    let ranker = Bm25Ranker::new(&loaded, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
    let fake = DocId(demo.fake_news as u32);
    let result = engine
        .sentence_removal(demo.query, demo.k, fake, &SentenceRemovalConfig::default())
        .expect("explanation over the reloaded index");
    let e = &result.explanations[0];
    println!(
        "explanation over the reloaded index: rank {} -> {} by removing {} sentences",
        e.old_rank,
        e.new_rank,
        e.removed.len()
    );
    std::fs::remove_file(&path).ok();
}
