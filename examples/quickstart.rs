//! Quickstart: index a few documents, rank them, and generate one
//! counterfactual explanation of each kind.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use credence_core::{CredenceEngine, Edit, EngineConfig, SentenceRemovalConfig};
use credence_index::{Bm25Params, Document, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn main() {
    // 1. A corpus. Any `Vec<Document>` works; see credence-corpus for
    //    loaders (JSONL/TSV) and generators.
    let docs = vec![
        Document::new(
            "breaking",
            "Breaking news",
            "covid outbreak covid outbreak dominates tonight's broadcast entirely.",
        ),
        Document::new(
            "quiet",
            "A quiet arrival",
            "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
             for weeks before acting decisively.",
        ),
        Document::new(
            "conspiracy",
            "What they won't tell you",
            "The covid outbreak is a cover story. A secret microchip hides in every vaccine \
             dose. The microchip tracks your movements constantly.",
        ),
        Document::new(
            "harbor",
            "Harbor drills",
            "Outbreak drills continue at the harbor facility through the weekend.",
        ),
        Document::new(
            "garden",
            "Garden fair",
            "The garden fair draws a record crowd.",
        ),
    ];

    // 2. Index + black-box ranker + engine.
    let index = InvertedIndex::build(docs, Analyzer::english());
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let engine = CredenceEngine::new(&ranker, EngineConfig::fast());

    // 3. Rank.
    let query = "covid outbreak";
    let k = 3;
    println!("== Ranking for {query:?} (k = {k}) ==");
    for row in engine.rank(query, k) {
        println!(
            "  {}. [{}] {}  (score {:.3})",
            row.rank, row.name, row.title, row.score
        );
    }

    // 4. Explain the conspiracy document (rank 3) counterfactually.
    let doc = credence_index::DocId(2);

    println!("\n== Counterfactual document (sentence removal) ==");
    let sr = engine
        .sentence_removal(query, k, doc, &SentenceRemovalConfig::default())
        .expect("explainable");
    for e in &sr.explanations {
        println!(
            "  removing {} sentence(s) drops it from rank {} to {}:",
            e.removed.len(),
            e.old_rank,
            e.new_rank
        );
        for text in &e.removed_text {
            println!("    - {text}");
        }
    }

    println!("\n== Counterfactual query (term augmentation) ==");
    let qa = engine
        .query_augmentation(
            query,
            k,
            doc,
            &credence_core::QueryAugmentationConfig {
                n: 2,
                threshold: 1,
                ..Default::default()
            },
        )
        .expect("explainable");
    for e in &qa.explanations {
        println!(
            "  {:?} -> rank {} (was {})",
            e.augmented_query, e.new_rank, e.old_rank
        );
    }

    println!("\n== Instance-based counterfactual (Doc2Vec nearest) ==");
    for e in engine
        .doc2vec_nearest(query, k, doc, 1)
        .expect("explainable")
    {
        let name = &index.document(e.doc).unwrap().name;
        println!("  [{}] similarity {:.2}", name, e.similarity);
    }

    println!("\n== Build-your-own counterfactual ==");
    let outcome = engine
        .builder_edits(
            query,
            k,
            doc,
            &[
                Edit::replace("covid", "flu"),
                Edit::replace("outbreak", "the flu"),
            ],
        )
        .expect("explainable");
    println!(
        "  replacing the query terms moves it {} -> {}; valid counterfactual: {}",
        outcome.old_rank, outcome.new_rank, outcome.valid
    );
}
